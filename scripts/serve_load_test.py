#!/usr/bin/env python
"""Service load test: >=1k campaigns through a bounded-depth queue.

Floods the ``repro.serve`` service with a multi-tenant submission storm —
far more submissions than unique specs, far more queued work than the
admission bound allows at once — and asserts the robustness story end to
end:

* the queue depth never exceeds the configured bound (admission control),
* the driver rides load-shedding as backpressure: a shed submission is
  retried until admitted (or deduped) instead of being lost,
* content-hash dedup collapses the storm by at least 2x: one execution
  serves every tenant that asked for the same spec,
* zero jobs are quarantined (nothing in the storm is poison; a quarantine
  here means a service bug),
* every submission ends ``done`` with a readable result.

Numbers land in the ``service`` section of ``BENCH_campaign.json``.

Examples::

    python scripts/serve_load_test.py --campaigns 1000 --depth 64
    python scripts/serve_load_test.py --campaigns 200 --pool 40 --bench ""
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve.client import (  # noqa: E402
    load_queue_state,
    request_drain,
    result_for,
    submit_to_inbox,
)
from repro.serve.queue import JobState  # noqa: E402
from repro.serve.spec import CampaignSpec  # noqa: E402

_SCRUBBED_ENV = (
    "REPRO_OBS", "REPRO_OBS_TIMING", "REPRO_TRACE", "REPRO_HEARTBEAT",
    "REPRO_CHECKPOINT", "REPRO_CHECKPOINT_DIR", "REPRO_FAULT_MODEL",
    "REPRO_TRIALS", "REPRO_JOBS", "REPRO_SERVE_WORKERS", "REPRO_SERVE_DEPTH",
    "REPRO_SERVE_RETRIES", "REPRO_RESILIENCE", "REPRO_MAX_RETRIES",
    "REPRO_TRIAL_DEADLINE", "REPRO_CHECKPOINT_EVERY",
)

_TENANTS = ("alice", "bob", "carol", "dave", "erin", "frank")


def log(message: str) -> None:
    print(f"[serve-load] {message}", flush=True)


def build_pool(size: int, trials: int, seed: int):
    """``size`` unique specs cycling workloads x schemes x seeds."""
    pool = []
    bump = 0
    while len(pool) < size:
        for workload in ("tiff2bw", "g721dec"):
            for scheme in ("original", "dup", "dup_valchk", "full_dup"):
                if len(pool) >= size:
                    break
                pool.append(CampaignSpec(
                    workload=workload, scheme=scheme, trials=trials,
                    seed=seed + bump,
                ))
        bump += 1
    return pool


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--campaigns", type=int, default=1000, metavar="N",
                        help="total submissions across tenants (default 1000)")
    parser.add_argument("--pool", type=int, default=100, metavar="N",
                        help="unique specs in the storm; collapse factor is "
                             "campaigns/pool (default 100 → 10x)")
    parser.add_argument("--depth", type=int, default=64, metavar="N",
                        help="admission bound under test (default 64)")
    parser.add_argument("--trials", type=int, default=4, metavar="N",
                        help="trials per campaign — small on purpose: the "
                             "queue, not the engine, is under test (default 4)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--workdir", default="serve-load-artifacts",
                        metavar="DIR")
    parser.add_argument("--bench", default=str(REPO / "BENCH_campaign.json"),
                        metavar="PATH",
                        help="BENCH_campaign.json to record the 'service' "
                             "section into (empty string: skip)")
    parser.add_argument("--timeout", type=float, default=1800.0)
    args = parser.parse_args()

    for name in _SCRUBBED_ENV:
        os.environ.pop(name, None)
    os.environ["REPRO_CACHE"] = "0"  # queue throughput, not cache, under test
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    root = workdir / "service-root"

    pool = build_pool(args.pool, args.trials, args.seed)
    log(f"storm: {args.campaigns} submissions over {len(pool)} unique specs "
        f"({len(_TENANTS)} tenants), depth bound {args.depth}")

    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + ([existing] if existing else [])
    )
    # Inline execution: the service process runs campaigns itself — the load
    # test measures queue machinery (journal, dedup, shedding, fairness)
    # under storm conditions, not multi-process campaign throughput.
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "run", "--root", str(root),
         "--inline", "--max-depth", str(args.depth)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
    )

    started = time.monotonic()
    deadline = started + args.timeout
    my_jobs = []       # job ids whose terminal state we own
    shed_retries = 0
    max_depth_seen = 0
    try:
        submitted = 0
        while submitted < args.campaigns:
            state = load_queue_state(root)
            depth = state.depth()
            max_depth_seen = max(max_depth_seen, depth)
            # Backpressure: pace submissions against the observed depth.
            # This deliberately ignores the in-flight inbox backlog, so the
            # driver races the admission loop past the bound now and then —
            # the resulting "queue full" sheds exercise the retry path below.
            budget = args.depth - depth
            if budget <= 0:
                if time.monotonic() > deadline:
                    raise TimeoutError("storm timed out while submitting")
                time.sleep(0.05)
                continue
            for _ in range(min(budget, args.campaigns - submitted)):
                spec = pool[submitted % len(pool)]
                tenant = _TENANTS[submitted % len(_TENANTS)]
                my_jobs.append(submit_to_inbox(root, spec, tenant=tenant))
                submitted += 1
            if submitted % 200 < len(_TENANTS):
                log(f"submitted {submitted}/{args.campaigns} "
                    f"(depth {depth}, retries {shed_retries})")

        # Retry any depth-shed submissions until everything we own is
        # terminal-and-not-shed: shedding is backpressure, not data loss.
        while True:
            state = load_queue_state(root)
            max_depth_seen = max(max_depth_seen, state.depth())
            pending = [j for j in my_jobs
                       if state.jobs.get(j) is None
                       or state.jobs[j].state not in JobState.TERMINAL
                       or (state.jobs[j].state == JobState.SHED
                           and "queue full" in (state.jobs[j].error or ""))]
            resubmit = [j for j in pending
                        if state.jobs.get(j) is not None
                        and state.jobs[j].state == JobState.SHED
                        and "queue full" in (state.jobs[j].error or "")]
            for job_id in resubmit:
                shed = state.jobs[job_id]
                my_jobs.remove(job_id)
                my_jobs.append(submit_to_inbox(
                    root, CampaignSpec.from_dict(shed.spec),
                    tenant=shed.tenant,
                ))
                shed_retries += 1
            if not pending:
                break
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{len(pending)} jobs not terminal at timeout"
                )
            time.sleep(0.1)
    except TimeoutError as err:
        log(f"FAIL: {err}")
        proc.kill()
        return 1
    finally:
        if proc.poll() is None:
            request_drain(root)
            try:
                proc.wait(timeout=120)
            except subprocess.TimeoutExpired:
                proc.kill()
    wall = time.monotonic() - started

    if proc.returncode != 0:
        log(f"FAIL: service exited {proc.returncode} after drain")
        return 1

    # -- invariants ----------------------------------------------------------
    state = load_queue_state(root)
    counters = dict(state.counters)
    failures = []
    not_done = [j for j in my_jobs if state.jobs[j].state != JobState.DONE]
    if not_done:
        failures.append(f"{len(not_done)} submissions did not end done")
    if counters.get("quarantined", 0):
        failures.append(
            f"{counters['quarantined']} jobs quarantined — service bug"
        )
    executions = counters.get("done", 0)
    collapse = len(my_jobs) / max(executions, 1)
    if collapse < 2.0:
        failures.append(f"dedup collapse {collapse:.1f}x < 2x")
    if max_depth_seen > args.depth:
        failures.append(
            f"depth bound violated: saw {max_depth_seen} > {args.depth}"
        )
    sample = result_for(root, my_jobs[-1])
    if sample is None or sample.get("trials") != args.trials:
        failures.append("sample result unreadable through the client")

    section = {
        "submissions": len(my_jobs),
        "unique_specs": len(pool),
        "executions": executions,
        "dedup_collapse": round(collapse, 2),
        "deduped": counters.get("deduped", 0),
        "shed_retried": shed_retries,
        "quarantined": counters.get("quarantined", 0),
        "depth_bound": args.depth,
        "max_depth_seen": max_depth_seen,
        "wall_seconds": round(wall, 2),
        "submissions_per_sec": round(len(my_jobs) / wall, 1),
        "counters": counters,
    }
    with open(workdir / "serve-load.json", "w", encoding="utf-8") as fh:
        json.dump(section, fh, indent=2)
        fh.write("\n")
    if args.bench:
        try:
            with open(args.bench, encoding="utf-8") as fh:
                bench = json.load(fh)
        except (OSError, ValueError):
            bench = {}
        bench["service"] = section
        with open(args.bench, "w", encoding="utf-8") as fh:
            json.dump(bench, fh, indent=2)
            fh.write("\n")
        log(f"recorded 'service' section in {args.bench}")

    if failures:
        for item in failures:
            log(f"FAIL: {item}")
        return 1
    log(f"ok: {len(my_jobs)} submissions → {executions} executions "
        f"({collapse:.1f}x dedup collapse), max depth {max_depth_seen} <= "
        f"{args.depth}, {shed_retries} shed+retried, 0 quarantined, "
        f"{wall:.1f}s ({section['submissions_per_sec']}/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
