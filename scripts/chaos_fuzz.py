#!/usr/bin/env python
"""Chaos-fuzz CLI (the CI `chaos-smoke` job).

Sweeps randomized corruptions across workloads × protection schemes × fault
models (see :mod:`repro.faultinjection.chaos`) and fails loudly unless every
trial terminates with a classified outcome, zero exceptions escape the
campaign engine, zero workers die, and zero trials hit the wall-clock
watchdog.

Examples::

    python scripts/chaos_fuzz.py --trials 300
    python scripts/chaos_fuzz.py --trials 1000 --jobs 4 --json chaos.json
    python scripts/chaos_fuzz.py --models burst,stuck_at --schemes dup,full_dup
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faultinjection.chaos import DEFAULT_MODELS, run_chaos_sweep  # noqa: E402
from repro.transforms.pipeline import SCHEMES  # noqa: E402
from repro.workloads.registry import BENCHMARK_NAMES  # noqa: E402

#: environment knobs that would make the sweep non-hermetic (stray event
#: logs, inherited checkpoints, a forced fault model) — cleared up front
_SCRUBBED_ENV = (
    "REPRO_OBS", "REPRO_OBS_TIMING", "REPRO_CHECKPOINT",
    "REPRO_CHECKPOINT_DIR", "REPRO_FAULT_MODEL", "REPRO_TRIALS",
    "REPRO_JOBS", "REPRO_TRIAL_DEADLINE", "REPRO_OCCUPANCY",
)


def log(message: str) -> None:
    print(f"[chaos-fuzz] {message}", flush=True)


def run_service_sweep(models, workloads, schemes, trials: int,
                      seed: int, workdir: Path) -> dict:
    """Push every fault model through the ``repro.serve`` queue path.

    One campaign per model x workload (schemes cycled) is admitted via the
    inbox and executed by an inline service.  The sweep passes iff the
    service exits cleanly, zero exceptions escape (an escape would
    quarantine the job), and zero queue entries wedge — nothing may be
    left ``queued``/``running``/``deduped`` after the service reports idle.
    """
    from repro.serve.client import load_queue_state, submit_to_inbox
    from repro.serve.queue import JobState
    from repro.serve.service import Service, ServiceConfig
    from repro.serve.spec import CampaignSpec

    root = workdir / "chaos-service-root"
    submitted = []
    i = 0
    for model in models:
        for workload in workloads:
            spec = CampaignSpec(
                workload=workload, scheme=schemes[i % len(schemes)],
                trials=trials, seed=seed + i, fault_model=model,
            )
            tenant = f"tenant{i % 3}"
            submitted.append((submit_to_inbox(root, spec, tenant=tenant),
                              model, spec))
            i += 1
    log(f"service sweep: {len(submitted)} campaigns "
        f"({len(models)} models) through the inline queue")

    violations = []
    config = ServiceConfig(
        root=str(root), inline=True, until_idle=True,
        backoff_seconds=0.0, poll_interval=0.01,
    )
    try:
        rc = Service(config).run()
    except BaseException as err:  # noqa: BLE001 - the sweep's whole point
        violations.append(f"exception escaped the service loop: {err!r}")
        rc = -1
    if rc != 0:
        violations.append(f"service exited {rc}, expected 0")

    state = load_queue_state(root)
    by_model = {}
    for job_id, model, spec in submitted:
        job = state.jobs.get(job_id)
        job_state = job.state if job is not None else "missing"
        by_model.setdefault(model, {}).setdefault(job_state, 0)
        by_model[model][job_state] += 1
        if job is None:
            violations.append(f"{spec.describe()}: job vanished from queue")
        elif job.state in (JobState.QUEUED, JobState.RUNNING,
                           JobState.DEDUPED):
            violations.append(
                f"{spec.describe()}: wedged in state {job.state}"
            )
        elif job.state != JobState.DONE:
            violations.append(
                f"{spec.describe()}: ended {job.state}: {job.error or ''}"
            )
    quarantined = dict(state.counters).get("quarantined", 0)
    if quarantined:
        violations.append(f"{quarantined} jobs quarantined by the sweep")

    return {
        "ok": not violations,
        "campaigns": len(submitted),
        "models": list(models),
        "job_states_by_model": by_model,
        "counters": dict(state.counters),
        "violations": violations,
    }


def _csv(value: str, universe, what: str, parser) -> tuple:
    items = tuple(item.strip() for item in value.split(",") if item.strip())
    unknown = set(items) - set(universe)
    if unknown:
        parser.error(f"unknown {what}: {sorted(unknown)}")
    return items


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=1000, metavar="N",
                        help="minimum injection trials per fault model, "
                             "split across the workload x scheme grid "
                             "(default: 1000)")
    parser.add_argument("--workloads", default="tiff2bw,g721dec",
                        metavar="A,B,...",
                        help="comma-separated benchmarks to corrupt "
                             "(default: tiff2bw,g721dec — the fastest two)")
    parser.add_argument("--schemes", default=",".join(SCHEMES),
                        metavar="A,B,...",
                        help="comma-separated protection schemes "
                             f"(default: all {len(SCHEMES)})")
    parser.add_argument("--models", default=",".join(DEFAULT_MODELS),
                        metavar="A,B,...",
                        help="comma-separated fault models "
                             "(default: every model plus 'chaos')")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="worker processes per campaign (default: 2, so "
                             "the sweep also fuzzes the parallel path)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full report as JSON (CI "
                             "uploads this as an artifact)")
    parser.add_argument("--service", action="store_true",
                        help="also sweep every fault model through the "
                             "repro.serve queue path (inline service); "
                             "fails on escaped exceptions or wedged jobs")
    parser.add_argument("--service-trials", type=int, default=60, metavar="N",
                        help="trials per service-sweep campaign (default 60)")
    parser.add_argument("--workdir", default="chaos-artifacts", metavar="DIR",
                        help="scratch/artifact directory for the service "
                             "sweep (default: chaos-artifacts)")
    args = parser.parse_args()

    for name in _SCRUBBED_ENV:
        os.environ.pop(name, None)
    os.environ["REPRO_CACHE"] = "0"

    workloads = _csv(args.workloads, BENCHMARK_NAMES, "workloads", parser)
    schemes = _csv(args.schemes, SCHEMES, "schemes", parser)
    models = _csv(args.models, DEFAULT_MODELS, "models", parser)

    log(f"sweeping {len(workloads)} workload(s) x {len(schemes)} scheme(s) "
        f"x {len(models)} model(s), >= {args.trials} trials per model, "
        f"jobs={args.jobs}")
    report = run_chaos_sweep(
        workloads, schemes, trials_per_model=args.trials, seed=args.seed,
        jobs=args.jobs, models=models, on_progress=log,
    )

    print()
    print(report.render_text())

    service_report = None
    if args.service:
        workdir = Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        service_report = run_service_sweep(
            models, workloads, schemes, trials=args.service_trials,
            seed=args.seed, workdir=workdir,
        )

    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = report.to_json()
        if service_report is not None:
            doc["service_sweep"] = service_report
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        log(f"wrote {path}")
    failed = not report.ok
    if not report.ok:
        log(f"FAIL: {len(report.violations)} violation(s)")
    if service_report is not None:
        if service_report["ok"]:
            log(f"service sweep ok: {service_report['campaigns']} campaigns, "
                f"zero escapes, zero wedged queue entries")
        else:
            failed = True
            for item in service_report["violations"]:
                log(f"FAIL (service sweep): {item}")
    if failed:
        return 1
    log("all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
