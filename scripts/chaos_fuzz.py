#!/usr/bin/env python
"""Chaos-fuzz CLI (the CI `chaos-smoke` job).

Sweeps randomized corruptions across workloads × protection schemes × fault
models (see :mod:`repro.faultinjection.chaos`) and fails loudly unless every
trial terminates with a classified outcome, zero exceptions escape the
campaign engine, zero workers die, and zero trials hit the wall-clock
watchdog.

Examples::

    python scripts/chaos_fuzz.py --trials 300
    python scripts/chaos_fuzz.py --trials 1000 --jobs 4 --json chaos.json
    python scripts/chaos_fuzz.py --models burst,stuck_at --schemes dup,full_dup
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faultinjection.chaos import DEFAULT_MODELS, run_chaos_sweep  # noqa: E402
from repro.transforms.pipeline import SCHEMES  # noqa: E402
from repro.workloads.registry import BENCHMARK_NAMES  # noqa: E402

#: environment knobs that would make the sweep non-hermetic (stray event
#: logs, inherited checkpoints, a forced fault model) — cleared up front
_SCRUBBED_ENV = (
    "REPRO_OBS", "REPRO_OBS_TIMING", "REPRO_CHECKPOINT",
    "REPRO_CHECKPOINT_DIR", "REPRO_FAULT_MODEL", "REPRO_TRIALS",
    "REPRO_JOBS", "REPRO_TRIAL_DEADLINE", "REPRO_OCCUPANCY",
)


def log(message: str) -> None:
    print(f"[chaos-fuzz] {message}", flush=True)


def _csv(value: str, universe, what: str, parser) -> tuple:
    items = tuple(item.strip() for item in value.split(",") if item.strip())
    unknown = set(items) - set(universe)
    if unknown:
        parser.error(f"unknown {what}: {sorted(unknown)}")
    return items


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=1000, metavar="N",
                        help="minimum injection trials per fault model, "
                             "split across the workload x scheme grid "
                             "(default: 1000)")
    parser.add_argument("--workloads", default="tiff2bw,g721dec",
                        metavar="A,B,...",
                        help="comma-separated benchmarks to corrupt "
                             "(default: tiff2bw,g721dec — the fastest two)")
    parser.add_argument("--schemes", default=",".join(SCHEMES),
                        metavar="A,B,...",
                        help="comma-separated protection schemes "
                             f"(default: all {len(SCHEMES)})")
    parser.add_argument("--models", default=",".join(DEFAULT_MODELS),
                        metavar="A,B,...",
                        help="comma-separated fault models "
                             "(default: every model plus 'chaos')")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="worker processes per campaign (default: 2, so "
                             "the sweep also fuzzes the parallel path)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full report as JSON (CI "
                             "uploads this as an artifact)")
    args = parser.parse_args()

    for name in _SCRUBBED_ENV:
        os.environ.pop(name, None)
    os.environ["REPRO_CACHE"] = "0"

    workloads = _csv(args.workloads, BENCHMARK_NAMES, "workloads", parser)
    schemes = _csv(args.schemes, SCHEMES, "schemes", parser)
    models = _csv(args.models, DEFAULT_MODELS, "models", parser)

    log(f"sweeping {len(workloads)} workload(s) x {len(schemes)} scheme(s) "
        f"x {len(models)} model(s), >= {args.trials} trials per model, "
        f"jobs={args.jobs}")
    report = run_chaos_sweep(
        workloads, schemes, trials_per_model=args.trials, seed=args.seed,
        jobs=args.jobs, models=models, on_progress=log,
    )

    print()
    print(report.render_text())
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(), fh, indent=2)
            fh.write("\n")
        log(f"wrote {path}")
    if not report.ok:
        log(f"FAIL: {len(report.violations)} violation(s)")
        return 1
    log("all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
