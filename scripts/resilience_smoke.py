#!/usr/bin/env python
"""End-to-end resilience smoke test (the CI `resilience-smoke` job).

Exercises the acceptance scenario for the campaign resilience layer with
real processes and real signals — things unit tests approximate:

1. **reference** — an undisturbed serial campaign; its result JSON and obs
   event log are the byte-level ground truth for everything below.
2. **kill + resume** — the same campaign with checkpointing on is SIGKILLed
   partway through, then re-invoked; the resumed run must be byte-identical
   (results *and* obs log) and the sidecar must show the checkpoint
   load/clear audit trail.
3. **worker kill** — a `--jobs 2` campaign has one pool worker SIGKILLed
   mid-run; the campaign must recover (retry → serial fallback) and still be
   byte-identical, with `worker_failure` visible in the sidecar.
4. **cache corruption** — a cached experiment campaign has its disk-cache
   entry corrupted; the next run must quarantine the entry (preserving the
   evidence in `quarantine/`) and recompute instead of trusting it.

Exits non-zero on the first violated invariant; artifacts stay in the
``--workdir`` (CI uploads them on failure).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
WORKLOAD = "tiff2bw"  # fastest workload in the suite
SCHEME = "dup_valchk"
TRIALS = 60
SEED = 3


def log(message: str) -> None:
    print(f"[resilience-smoke] {message}", flush=True)


def fail(message: str) -> None:
    log(f"FAIL: {message}")
    sys.exit(1)


def campaign_env(workdir: Path) -> dict:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(REPO / "src")
    # Campaign phases must actually run trials, not replay the cache.
    env["REPRO_CACHE"] = "0"
    for name in ("REPRO_OBS", "REPRO_CHECKPOINT", "REPRO_CHECKPOINT_DIR",
                 "REPRO_RESILIENCE", "REPRO_JOBS", "REPRO_TRIALS",
                 "REPRO_TRIAL_DEADLINE"):
        env.pop(name, None)
    return env


def campaign_cmd(json_out: Path, obs_log: Path, *extra: str) -> list:
    return [
        sys.executable, "-m", "repro.faultinjection", WORKLOAD, SCHEME,
        "--trials", str(TRIALS), "--seed", str(SEED), "--quiet",
        "--json", str(json_out), "--obs-log", str(obs_log), *extra,
    ]


def read_sidecar_kinds(obs_log: Path) -> list:
    sidecar = Path(f"{obs_log}.resilience")
    if not sidecar.exists():
        return []
    kinds = []
    for line in sidecar.read_text().splitlines():
        try:
            kinds.append(json.loads(line)["kind"])
        except (ValueError, KeyError):
            pass
    return kinds


def expect_identical(path_a: Path, path_b: Path, what: str) -> None:
    if path_a.read_bytes() != path_b.read_bytes():
        fail(f"{what}: {path_a.name} differs from {path_b.name}")
    log(f"ok: {what} byte-identical")


def phase_reference(workdir: Path, env: dict) -> None:
    log(f"reference: {WORKLOAD}/{SCHEME} {TRIALS} trials, jobs=1")
    subprocess.run(
        campaign_cmd(workdir / "ref.json", workdir / "ref.jsonl", "--jobs", "1"),
        check=True, env=env, cwd=REPO,
    )


def phase_kill_and_resume(workdir: Path, env: dict) -> None:
    ckpt = workdir / "resume.ckpt"
    cmd = campaign_cmd(
        workdir / "resume.json", workdir / "resume.jsonl",
        "--jobs", "1", "--checkpoint", str(ckpt), "--checkpoint-every", "5",
    )
    # Run this phase with the snapshot/triage accelerators off: on a fast
    # machine the accelerated campaign can finish inside the kill window,
    # clearing its checkpoint before the SIGKILL lands.  Accelerators
    # on/off is byte-identical by the house invariant (and excluded from
    # checkpoint compatibility), so the reference comparison still holds.
    slow_env = dict(env)
    slow_env["REPRO_SNAPSHOT"] = "0"
    slow_env["REPRO_TRIAGE"] = "0"
    log("kill+resume: starting campaign, will SIGKILL after first checkpoint")
    proc = subprocess.Popen(cmd, env=slow_env, cwd=REPO)
    deadline = time.time() + 120
    while not ckpt.exists():
        if proc.poll() is not None:
            fail("campaign finished before a checkpoint was ever written "
                 "(raise TRIALS or lower --checkpoint-every)")
        if time.time() > deadline:
            proc.kill()
            fail("no checkpoint appeared within 120s")
        time.sleep(0.05)
    # Let it get a little further past the flush, then kill without mercy.
    time.sleep(0.1)
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    if not ckpt.exists():
        fail("campaign outran the SIGKILL and cleared its checkpoint "
             "(finished before the kill landed)")
    log("killed; resuming from checkpoint with jobs=2")
    subprocess.run(cmd[:-6] + ["--jobs", "2", "--checkpoint", str(ckpt),
                               "--checkpoint-every", "5"],
                   check=True, env=env, cwd=REPO)
    expect_identical(workdir / "resume.json", workdir / "ref.json",
                     "kill+resume result JSON")
    expect_identical(workdir / "resume.jsonl", workdir / "ref.jsonl",
                     "kill+resume obs log")
    kinds = read_sidecar_kinds(workdir / "resume.jsonl")
    if "checkpoint_load" not in kinds or "checkpoint_clear" not in kinds:
        fail(f"resume audit trail incomplete: {kinds}")
    if ckpt.exists():
        fail("checkpoint not cleared after successful resume")
    log(f"ok: resume audit trail {sorted(set(kinds))}")


def worker_pids(parent_pid: int) -> list:
    """Direct children of ``parent_pid`` via /proc (Linux only)."""
    children = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                fields = fh.read().split()
            if int(fields[3]) == parent_pid:
                children.append(int(entry))
        except (OSError, IndexError, ValueError):
            continue
    return children


def phase_worker_kill(workdir: Path, env: dict) -> None:
    cmd = campaign_cmd(
        workdir / "workerkill.json", workdir / "workerkill.jsonl",
        "--jobs", "2", "--max-retries", "2",
    )
    log("worker-kill: starting jobs=2 campaign, will SIGKILL one worker")
    proc = subprocess.Popen(cmd, env=env, cwd=REPO)
    victim = None
    deadline = time.time() + 120
    while victim is None:
        if proc.poll() is not None:
            fail("campaign finished before a worker could be killed "
                 "(raise TRIALS)")
        if time.time() > deadline:
            proc.kill()
            fail("no worker process appeared within 120s")
        children = worker_pids(proc.pid)
        if children:
            victim = children[0]
        else:
            time.sleep(0.02)
    # Give the worker a moment to pick up a chunk, then kill it.
    time.sleep(0.2)
    try:
        os.kill(victim, signal.SIGKILL)
        log(f"SIGKILLed worker pid {victim}")
    except ProcessLookupError:
        log("worker exited before the kill landed; campaign may not "
            "exercise recovery this round")
    returncode = proc.wait(timeout=600)
    if returncode != 0:
        fail(f"campaign did not survive the worker kill (exit {returncode})")
    expect_identical(workdir / "workerkill.json", workdir / "ref.json",
                     "worker-kill result JSON")
    expect_identical(workdir / "workerkill.jsonl", workdir / "ref.jsonl",
                     "worker-kill obs log")
    kinds = read_sidecar_kinds(workdir / "workerkill.jsonl")
    if "worker_failure" in kinds:
        log(f"ok: recovery audit trail {sorted(set(kinds))}")
    else:
        # The pool can drain the remaining chunks before the signal lands;
        # results above were still verified identical.
        log("note: kill landed too late to break the pool (no "
            "worker_failure event); parity still verified")


def phase_cache_corruption(workdir: Path, env: dict) -> None:
    cache_dir = workdir / "cache"
    exp_env = dict(env)
    exp_env["REPRO_CACHE"] = "1"
    exp_env["REPRO_CACHE_DIR"] = str(cache_dir)
    exp_env["REPRO_TRIALS"] = "6"
    exp_env["REPRO_OBS"] = str(workdir / "experiments.jsonl")
    cmd = [sys.executable, "-m", "repro.experiments", "figure2",
           "--workloads", WORKLOAD, "--quiet"]
    log("cache-corruption: priming the disk cache via repro.experiments")
    subprocess.run(cmd, check=True, env=exp_env, cwd=REPO)
    entries = sorted(cache_dir.glob("campaign-*.json"))
    if not entries:
        fail("experiment run produced no cache entries")
    victim = entries[0]
    log(f"corrupting {victim.name}")
    victim.write_text(victim.read_text()[:-40] + "garbage")
    subprocess.run(cmd, check=True, env=exp_env, cwd=REPO)
    quarantine = cache_dir / "quarantine"
    if not quarantine.exists() or not list(quarantine.iterdir()):
        fail("corrupt cache entry was not quarantined")
    if not victim.exists():
        fail("corrupt cache entry was not recomputed after quarantine")
    kinds = read_sidecar_kinds(Path(exp_env["REPRO_OBS"]))
    if "cache_corrupt" not in kinds:
        fail(f"no cache_corrupt audit event: {kinds}")
    log("ok: corrupt entry quarantined, recomputed, and audited")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="resilience-artifacts",
                        help="artifact directory (kept for CI upload)")
    args = parser.parse_args()
    if not hasattr(signal, "SIGKILL") or not os.path.isdir("/proc"):
        log("skipping: needs a Linux host (SIGKILL + /proc)")
        return 0
    workdir = Path(args.workdir).resolve()
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    env = campaign_env(workdir)
    phase_reference(workdir, env)
    phase_kill_and_resume(workdir, env)
    phase_worker_kill(workdir, env)
    phase_cache_corruption(workdir, env)
    log("all resilience invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
