#!/usr/bin/env python
"""Service smoke (the CI `service-smoke` job).

Drives the ``repro.serve`` campaign service through its headline crash
story: ~20 mixed-tenant campaigns (with deliberate cross-tenant duplicates)
are dropped into the inbox, a worker-pool service is started and SIGKILLed
mid-run, then restarted.  The restarted service must recover every
in-flight job from its checkpoint and finish the whole queue such that
every job's ``result.json`` and ``campaign.jsonl`` — and the shared cache
entry — are **byte-identical** to direct in-process runs of the same specs.

Examples::

    python scripts/serve_smoke.py --workdir serve-artifacts
    python scripts/serve_smoke.py --campaigns 30 --trials 60 --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faultinjection.campaign import CampaignConfig, prepare, run_campaign  # noqa: E402
from repro.faultinjection.diskcache import campaign_key  # noqa: E402
from repro.faultinjection.resilience import default_policy  # noqa: E402
from repro.serve.client import load_queue_state, submit_to_inbox  # noqa: E402
from repro.serve.queue import JobState  # noqa: E402
from repro.serve.spec import CampaignSpec  # noqa: E402
from repro.serve.worker import job_paths  # noqa: E402
from repro.workloads.registry import get_workload  # noqa: E402

_SCRUBBED_ENV = (
    "REPRO_OBS", "REPRO_OBS_TIMING", "REPRO_TRACE", "REPRO_HEARTBEAT",
    "REPRO_CHECKPOINT", "REPRO_CHECKPOINT_DIR", "REPRO_FAULT_MODEL",
    "REPRO_TRIALS", "REPRO_JOBS", "REPRO_SERVE_WORKERS", "REPRO_SERVE_DEPTH",
    "REPRO_SERVE_RETRIES", "REPRO_RESILIENCE", "REPRO_MAX_RETRIES",
    "REPRO_TRIAL_DEADLINE", "REPRO_CHECKPOINT_EVERY",
)

_TENANTS = ("alice", "bob", "carol", "dave")


def log(message: str) -> None:
    print(f"[serve-smoke] {message}", flush=True)


def build_specs(campaigns: int, trials: int, seed: int):
    """A mixed-tenant submission plan with guaranteed cross-tenant dupes.

    Cycles a pool of unique specs across the tenants; once the pool is
    shorter than the submission count, later submissions repeat earlier
    specs under different tenants — the dedup path under test.
    """
    pool = []
    for workload in ("g721dec", "tiff2bw"):
        for scheme in ("original", "dup", "dup_valchk", "full_dup"):
            for bump in (0, 1):
                pool.append(CampaignSpec(
                    workload=workload, scheme=scheme, trials=trials,
                    seed=seed + bump,
                ))
    plan = []
    for i in range(campaigns):
        plan.append((_TENANTS[i % len(_TENANTS)], pool[i % len(pool)]))
    return plan


def serve_cmd(root: Path, workers: int) -> list:
    return [
        sys.executable, "-m", "repro.serve", "run", "--root", str(root),
        "--workers", str(workers), "--until-idle",
    ]


def serve_env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + ([existing] if existing else [])
    )
    return env


def wait_for(predicate, timeout: float, poll: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


def reference_artifacts(spec: CampaignSpec, ref_log: Path):
    """Direct in-process run of one spec: (result_doc, campaign_key)."""
    config = CampaignConfig(
        trials=spec.trials, seed=spec.seed, jobs=spec.jobs,
        swap_train_test=spec.swap_train_test,
        fault_model=spec.fault_model or "single_bit",
        obs_log=str(ref_log), resilience=default_policy(),
    )
    prepared = prepare(get_workload(spec.workload), spec.scheme, config)
    result = run_campaign(
        prepared.workload, spec.scheme, config, prepared=prepared
    )
    key = campaign_key(prepared.module, spec.workload, spec.scheme, config)
    return result.to_dict(), key


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="serve-artifacts", metavar="DIR",
                        help="artifact directory (service root, cache, "
                             "references, report)")
    parser.add_argument("--campaigns", type=int, default=20, metavar="N",
                        help="submissions across the tenant mix (default 20)")
    parser.add_argument("--trials", type=int, default=40, metavar="N",
                        help="trials per campaign (default 40)")
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--workers", type=int, default=3, metavar="N",
                        help="service worker pool size (default 3)")
    parser.add_argument("--kill-after-running", type=int, default=None,
                        metavar="N",
                        help="SIGKILL once N jobs are running "
                             "(default: the worker count)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="report path (default <workdir>/serve-smoke.json)")
    args = parser.parse_args()

    for name in _SCRUBBED_ENV:
        os.environ.pop(name, None)
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    root = workdir / "service-root"
    cache_dir = workdir / "cache"
    report_path = Path(args.json) if args.json else workdir / "serve-smoke.json"
    # Small checkpoint interval so the SIGKILL lands on runs with flushed
    # checkpoints to resume from; checkpoint cadence must not change bytes.
    os.environ["REPRO_CHECKPOINT_EVERY"] = "5"
    os.environ["REPRO_CACHE"] = "1"
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)

    plan = build_specs(args.campaigns, args.trials, args.seed)
    unique = {spec.key(): spec for _, spec in plan}
    log(f"submitting {len(plan)} campaigns ({len(unique)} unique) from "
        f"{len(_TENANTS)} tenants, workers={args.workers}")
    job_ids = [(submit_to_inbox(root, spec, tenant=tenant), tenant, spec)
               for tenant, spec in plan]

    # -- phase 1: run and SIGKILL mid-queue ---------------------------------
    kill_threshold = args.kill_after_running or args.workers
    proc = subprocess.Popen(serve_cmd(root, args.workers), env=serve_env(),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.STDOUT)

    def _running() -> int:
        return sum(1 for j in load_queue_state(root).jobs.values()
                   if j.state == JobState.RUNNING)

    try:
        if not wait_for(lambda: _running() >= kill_threshold, timeout=300):
            log(f"FAIL: never saw {kill_threshold} concurrent running jobs")
            return 1
        state = load_queue_state(root)
        killed_at = {
            "running": _running(),
            "done": state.counts()[JobState.DONE],
            "queued": state.counts()[JobState.QUEUED],
        }
        log(f"SIGKILL service pid {proc.pid} at {killed_at}")
        proc.kill()
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()

    # -- phase 2: restart; recovery must finish everything ------------------
    log("restarting service; expecting full recovery to idle")
    rerun = subprocess.run(serve_cmd(root, args.workers), env=serve_env(),
                           timeout=1800, stdout=subprocess.DEVNULL,
                           stderr=subprocess.STDOUT)
    if rerun.returncode != 0:
        log(f"FAIL: restarted service exited {rerun.returncode}")
        return 1

    state = load_queue_state(root)
    not_done = [j for j in state.jobs.values() if j.state != JobState.DONE]
    if not_done:
        for job in not_done:
            log(f"FAIL: job {job.id} ended {job.state}: {job.error or ''}")
        return 1
    counters = dict(state.counters)
    log(f"queue drained: counters={counters}")

    # -- phase 3: byte-identity against direct runs -------------------------
    mismatches = []
    primaries = {}  # key -> executing job id
    for job_id, _, spec in job_ids:
        job = state.jobs[job_id]
        primaries.setdefault(job.key, job.primary or job_id)
    for key, spec in unique.items():
        ref_log = workdir / f"ref-{key[:16]}.jsonl"
        ref_doc, disk_key = reference_artifacts(spec, ref_log)
        paths = job_paths(root, primaries[key])
        with open(paths.result, "rb") as fh:
            if fh.read() != json.dumps(ref_doc).encode():
                mismatches.append(f"{spec.describe()}: result.json")
        with open(paths.obs_log, "rb") as fh:
            if fh.read() != ref_log.read_bytes():
                mismatches.append(f"{spec.describe()}: campaign.jsonl")
        entry_path = cache_dir / f"campaign-{disk_key}.json"
        try:
            with open(entry_path, encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry.get("result") != ref_doc:
                mismatches.append(f"{spec.describe()}: cache entry payload")
        except (OSError, ValueError):
            mismatches.append(f"{spec.describe()}: cache entry missing")

    report = {
        "campaigns": len(plan),
        "unique_specs": len(unique),
        "tenants": len(_TENANTS),
        "workers": args.workers,
        "trials": args.trials,
        "killed_at": killed_at,
        "counters": counters,
        "interrupted_jobs": counters.get("interrupted", 0),
        "deduped_jobs": counters.get("deduped", 0),
        "byte_identical": not mismatches,
        "mismatches": mismatches,
    }
    with open(report_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    log(f"wrote {report_path}")

    if mismatches:
        for item in mismatches:
            log(f"FAIL: diverged across kill-resume: {item}")
        return 1
    if counters.get("deduped", 0) < len(plan) - len(unique):
        log("FAIL: cross-tenant duplicates were not deduped")
        return 1
    log(f"ok: {len(plan)} campaigns ({len(unique)} executions, "
        f"{counters.get('deduped', 0)} deduped, "
        f"{counters.get('interrupted', 0)} interrupted by the kill) — "
        f"all byte-identical to direct runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
