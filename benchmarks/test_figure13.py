"""Regenerates paper Figure 13: ASDC/USDC split of SDCs per scheme.

Expected shape (paper: SDC 15%→9.5%→7.3%, USDC 3.4%→1.8%→1.2%): both total
SDCs and the unacceptable subset shrink as protection is added.
"""

from repro.experiments import figure13


def test_figure13(benchmark, cache, save_report):
    rows = benchmark.pedantic(figure13.compute, args=(cache,), rounds=1, iterations=1)
    avgs = figure13.averages(cache)

    for r in rows:
        assert abs(r.sdc - (r.asdc + r.usdc)) < 1e-9

    assert avgs["original"].sdc > 0
    assert avgs["dup"].sdc <= avgs["original"].sdc
    assert avgs["dup_valchk"].usdc <= avgs["original"].usdc

    save_report("figure13", figure13.report(cache))
