"""Regenerates the Section V input-sensitivity (2-fold cross-validation)
experiment on jpegdec and kmeans.

Expected shape: swapping the profiling and fault-injection inputs moves the
outcome fractions only slightly (paper: per-category deltas of 0.05%-0.45%;
at our smaller trial counts the tolerance is wider but the scheme must keep
working — checks trained on one input remain valid on the other).
"""

from repro.experiments import crossval


def test_crossval(benchmark, cache, save_report):
    rows = benchmark.pedantic(crossval.compute, args=(cache,), rounds=1, iterations=1)
    assert {r.benchmark for r in rows} == set(crossval.CROSSVAL_BENCHMARKS)

    deltas = crossval.mean_deltas(rows)
    # outcome fractions stay broadly stable under the input swap
    assert all(delta <= 0.25 for delta in deltas.values()), deltas

    # the protection still detects with swapped inputs
    swapped_sw = [r.swapped for r in rows if r.category == "SWDetect"]
    assert any(v > 0 for v in swapped_sw)

    save_report("crossval", crossval.report(cache))
