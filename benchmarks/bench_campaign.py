#!/usr/bin/env python
"""Campaign-throughput benchmark: serial reference vs fast path vs parallel.

Measures trials/sec for one (workload, scheme) campaign in three modes and
writes ``BENCH_campaign.json`` (at the repo root by default) so the perf
trajectory is tracked from PR to PR:

* ``serial_reference`` — the seed configuration: per-instruction reference
  interpreter loop (``REPRO_FASTPATH=0``), one process;
* ``serial_fastpath`` — the pre-compiled interpreter fast path, one process;
* ``parallel_fastpath`` — fast path fanned out over ``--jobs`` workers.

All three modes share one prepared workload and the same pre-drawn trial
plans, so they do identical work and produce bit-identical results (the
harness asserts outcome tallies match).  Throughput excludes preparation
(module build + protection + golden run), which is a one-time cost amortised
over a campaign.

Usage::

    python benchmarks/bench_campaign.py                     # defaults
    python benchmarks/bench_campaign.py --trials 24 --jobs 2 --output -
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faultinjection.campaign import (  # noqa: E402
    CampaignConfig, prepare, run_campaign,
)
from repro.workloads.registry import get_workload  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent


def _measure(workload, scheme, prepared, config, fastpath: bool):
    """Time one campaign over the shared prepared workload; returns
    (tallies, seconds)."""
    os.environ["REPRO_FASTPATH"] = "1" if fastpath else "0"
    start = time.perf_counter()
    result = run_campaign(workload, scheme, config, prepared=prepared)
    elapsed = time.perf_counter() - start
    return result.counts(), elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="g721dec")
    parser.add_argument("--scheme", default="dup_valchk")
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_campaign.json"),
                        help="output JSON path, or '-' for stdout")
    parser.add_argument("--obs-log", metavar="PATH", default=None,
                        help="after the timed runs, replay the campaign once "
                             "(untimed) with the JSONL trial event log enabled "
                             "and assert its tallies match the timed results")
    args = parser.parse_args(argv)

    workload = get_workload(args.workload)
    serial = CampaignConfig(trials=args.trials, seed=args.seed)
    parallel = CampaignConfig(trials=args.trials, seed=args.seed, jobs=args.jobs)

    os.environ["REPRO_FASTPATH"] = "1"
    prepared = prepare(workload, args.scheme, serial)

    print(f"[bench] {args.workload}/{args.scheme}, {args.trials} trials, "
          f"{os.cpu_count()} cpu(s)", file=sys.stderr)
    ref_counts, ref_s = _measure(workload, args.scheme, prepared, serial, False)
    print(f"[bench] serial reference : {args.trials / ref_s:7.1f} trials/s",
          file=sys.stderr)
    fast_counts, fast_s = _measure(workload, args.scheme, prepared, serial, True)
    print(f"[bench] serial fast path : {args.trials / fast_s:7.1f} trials/s",
          file=sys.stderr)
    par_counts, par_s = _measure(workload, args.scheme, prepared, parallel, True)
    print(f"[bench] parallel x{args.jobs:<2d}     : {args.trials / par_s:7.1f} "
          f"trials/s", file=sys.stderr)
    os.environ.pop("REPRO_FASTPATH", None)

    if not (ref_counts == fast_counts == par_counts):
        print("[bench] ERROR: modes disagree on outcomes "
              f"(ref={ref_counts} fast={fast_counts} par={par_counts})",
              file=sys.stderr)
        return 1

    obs_verified = None
    if args.obs_log:
        # Extra untimed pass with the trial event log enabled: the timed
        # numbers above stay obs-free, and the log must tally exactly to the
        # timed outcomes.
        from dataclasses import replace

        from repro.obs.events import read_events

        log_path = Path(args.obs_log)
        if log_path.exists():
            log_path.unlink()  # logs append; the bench wants a fresh one
        os.environ["REPRO_FASTPATH"] = "1"
        obs_result = run_campaign(
            workload, args.scheme,
            replace(parallel, obs_log=str(log_path)), prepared=prepared,
        )
        os.environ.pop("REPRO_FASTPATH", None)
        events, skipped = read_events(log_path)
        tally: dict = {}
        for event in events:
            if event.get("event") == "trial":
                tally[event["outcome"]] = tally.get(event["outcome"], 0) + 1
        logged = {k: tally.get(k, 0) for k in ref_counts}
        if skipped or logged != ref_counts or obs_result.counts() != ref_counts:
            print(f"[bench] ERROR: obs log disagrees with timed results "
                  f"(logged={logged} timed={ref_counts} skipped={skipped})",
                  file=sys.stderr)
            return 1
        obs_verified = {
            "log": str(log_path),
            "trial_events": sum(logged.values()),
            "tallies_match": True,
        }
        print(f"[bench] obs log verified : {sum(logged.values())} trial "
              f"events tally to the timed outcomes ({log_path})",
              file=sys.stderr)

    report = {
        "benchmark": "campaign_throughput",
        "workload": args.workload,
        "scheme": args.scheme,
        "trials": args.trials,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "outcome_counts": ref_counts,
        "serial_reference": {
            "trials_per_sec": round(args.trials / ref_s, 2),
            "seconds": round(ref_s, 3),
        },
        "serial_fastpath": {
            "trials_per_sec": round(args.trials / fast_s, 2),
            "seconds": round(fast_s, 3),
        },
        "parallel_fastpath": {
            "jobs": args.jobs,
            "trials_per_sec": round(args.trials / par_s, 2),
            "seconds": round(par_s, 3),
        },
        "speedups": {
            "fastpath_serial_vs_reference": round(ref_s / fast_s, 2),
            "parallel_vs_reference": round(ref_s / par_s, 2),
            "parallel_vs_fastpath_serial": round(fast_s / par_s, 2),
        },
        "notes": (
            "Throughput excludes one-time preparation. On a single-core "
            "runner parallel_fastpath cannot exceed serial_fastpath; the "
            "fast-path speedup is process-count independent. Timed runs "
            "keep observability disabled; --obs-log adds a separate "
            "untimed verification pass."
        ),
    }
    if obs_verified is not None:
        report["obs_verification"] = obs_verified
    payload = json.dumps(report, indent=2) + "\n"
    if args.output == "-":
        sys.stdout.write(payload)
    else:
        Path(args.output).write_text(payload)
        print(f"[bench] wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
