#!/usr/bin/env python
"""Campaign-throughput benchmark: reference vs fast path vs snapshots.

Measures trials/sec for one (workload, scheme) campaign in five modes and
writes ``BENCH_campaign.json`` (at the repo root by default) so the perf
trajectory is tracked from PR to PR:

* ``serial_reference`` — the seed configuration: per-instruction reference
  interpreter loop (``REPRO_FASTPATH=0``), one process;
* ``serial_fastpath`` — the pre-compiled interpreter fast path, one process,
  snapshots and triage off (every trial replays from cycle 0);
* ``snapshot_fastpath`` — fast path + golden-run snapshots: each trial
  fast-forwards to the nearest snapshot before its injection cycle;
* ``triage`` — snapshots + dead-flip triage: provably-dead flips
  short-circuit to Masked without a post-injection run;
* ``parallel_fastpath`` — fast path (snapshots off, for continuity with
  earlier PRs) fanned out over ``--jobs`` workers;
* ``batched`` — lane-parallel sweeps over the triage fastpath, measured as
  a separate paired comparison (same plans, scalar-triage vs batched) on a
  memory-hierarchy campaign sized to the backend's payoff regime: many
  lanes per snapshot window, where masked-at-strike verdicts amortise the
  shared window replay.

All modes share one prepared workload and the same pre-drawn trial plans, so
they do identical logical work and must produce bit-identical results — the
harness asserts every mode's outcome tallies match, which doubles as the
differential verification of the snapshot/triage engine (recorded in the
report's ``differential`` section; CI asserts it).  Throughput excludes
preparation (module build + protection + golden + capture runs), a one-time
cost amortised over a campaign.

Usage::

    python benchmarks/bench_campaign.py                     # defaults
    python benchmarks/bench_campaign.py --trials 24 --jobs 2 --output -
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faultinjection.campaign import (  # noqa: E402
    CampaignConfig, prepare, run_campaign,
)
from repro.workloads.registry import get_workload  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent


def _measure(workload, scheme, prepared, config, fastpath: bool):
    """Time one campaign over the shared prepared workload; returns
    (tallies, seconds)."""
    os.environ["REPRO_FASTPATH"] = "1" if fastpath else "0"
    start = time.perf_counter()
    result = run_campaign(workload, scheme, config, prepared=prepared)
    elapsed = time.perf_counter() - start
    return result.counts(), elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="g721dec")
    parser.add_argument("--scheme", default="dup_valchk")
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_campaign.json"),
                        help="output JSON path, or '-' for stdout")
    parser.add_argument("--obs-log", metavar="PATH", default=None,
                        help="after the timed runs, replay the campaign once "
                             "(untimed) with the JSONL trial event log enabled "
                             "and assert its tallies match the timed results")
    args = parser.parse_args(argv)

    workload = get_workload(args.workload)
    # From-scratch baselines pin snapshots/triage off; the prepared workload
    # is built with snapshot capture on (auto cadence) so the snapshot modes
    # can restore from it — run_trial gates on the *config*, so the baseline
    # runs never touch the stored snapshots.
    serial = CampaignConfig(trials=args.trials, seed=args.seed,
                            snapshot_every=0, triage=False)
    snapshot = CampaignConfig(trials=args.trials, seed=args.seed,
                              snapshot_every=-1, triage=False)
    triage = CampaignConfig(trials=args.trials, seed=args.seed,
                            snapshot_every=-1, triage=True)
    parallel = CampaignConfig(trials=args.trials, seed=args.seed,
                              jobs=args.jobs, snapshot_every=0, triage=False)

    os.environ["REPRO_FASTPATH"] = "1"
    # One-time preparation cost per mode: a plain prepare (module build +
    # protection + golden run) vs the snapshot modes' prepare, which adds
    # the instrumented capture run.  The snapshot-capturing workload is the
    # one every timed mode shares.
    t0 = time.perf_counter()
    prepare(workload, args.scheme, serial)
    prepare_plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    prepared = prepare(workload, args.scheme, snapshot)
    prepare_capture_s = time.perf_counter() - t0

    # Occupancy-pass overhead: a memory-model prepare fuses the occupancy
    # capture into the same instrumented run the snapshot capture already
    # pays for, so the marginal cost is just the load/store wrapper
    # overhead.  Both sides are measured best-of-3 (single timings of
    # ~100ms prepares are too noisy to subtract) and the overhead is
    # asserted under 10% of the memory-model prepare.
    memfault = CampaignConfig(trials=args.trials, seed=args.seed,
                              snapshot_every=-1, triage=False,
                              fault_model="mem_transient")
    snap_best = mem_best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        prepare(workload, args.scheme, snapshot)
        snap_best = min(snap_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        prepare(workload, args.scheme, memfault)
        mem_best = min(mem_best, time.perf_counter() - t0)
    occupancy_overhead_s = max(0.0, mem_best - snap_best)
    occupancy_overhead_pct = 100.0 * occupancy_overhead_s / mem_best

    print(f"[bench] {args.workload}/{args.scheme}, {args.trials} trials, "
          f"{os.cpu_count()} cpu(s), "
          f"{len(prepared.snapshots) if prepared.snapshots else 0} snapshots",
          file=sys.stderr)
    print(f"[bench] prepare          : {prepare_plain_s:7.2f}s plain, "
          f"{prepare_capture_s:7.2f}s with snapshot capture",
          file=sys.stderr)
    print(f"[bench] occupancy capture: {occupancy_overhead_s*1000:7.1f}ms "
          f"overhead, {occupancy_overhead_pct:.1f}% of the memory-model "
          f"prepare ({mem_best:.2f}s)", file=sys.stderr)
    if occupancy_overhead_pct >= 10.0:
        print(f"[bench] ERROR: occupancy-pass overhead "
              f"{occupancy_overhead_pct:.1f}% breaches the 10%-of-prepare "
              f"budget (snapshot prepare {snap_best:.3f}s, memory-model "
              f"prepare {mem_best:.3f}s)", file=sys.stderr)
        return 1
    ref_counts, ref_s = _measure(workload, args.scheme, prepared, serial, False)
    print(f"[bench] serial reference : {args.trials / ref_s:7.1f} trials/s",
          file=sys.stderr)
    fast_counts, fast_s = _measure(workload, args.scheme, prepared, serial, True)
    print(f"[bench] serial fast path : {args.trials / fast_s:7.1f} trials/s",
          file=sys.stderr)
    snap_counts, snap_s = _measure(workload, args.scheme, prepared, snapshot, True)
    print(f"[bench] snapshot restore : {args.trials / snap_s:7.1f} trials/s",
          file=sys.stderr)
    tri_counts, tri_s = _measure(workload, args.scheme, prepared, triage, True)
    print(f"[bench] snapshot + triage: {args.trials / tri_s:7.1f} trials/s",
          file=sys.stderr)
    par_counts, par_s = _measure(workload, args.scheme, prepared, parallel, True)
    print(f"[bench] parallel x{args.jobs:<2d}     : {args.trials / par_s:7.1f} "
          f"trials/s", file=sys.stderr)

    # Trace overhead: rerun the serial fast path with span tracing on.  The
    # house invariant says tracing must not change results (asserted below)
    # and should cost a few percent of wall time at most; the measured
    # overhead is recorded so the trajectory is tracked PR to PR, but not
    # asserted — single-digit percentages drown in machine noise on CI.
    import tempfile
    from dataclasses import replace as _replace

    with tempfile.TemporaryDirectory() as trace_dir:
        trace_path = os.path.join(trace_dir, "bench-trace.json")
        traced_counts, traced_s = _measure(
            workload, args.scheme, prepared,
            _replace(serial, trace=trace_path), True,
        )
    trace_overhead_pct = 100.0 * (traced_s - fast_s) / fast_s
    print(f"[bench] traced fast path : {args.trials / traced_s:7.1f} trials/s "
          f"({trace_overhead_pct:+.1f}% vs untraced)", file=sys.stderr)
    os.environ.pop("REPRO_FASTPATH", None)

    # Batched lane sweeps vs the scalar triage fastpath.  Batching pays off
    # in proportion to the time share of trials whose verdict is decided at
    # the injection instant, so the paired comparison runs the fault model
    # with the highest strike-time triage rate (stack_frame, occupancy-map
    # dead-region proofs) and enough trials that each snapshot window
    # carries several lanes.  Both sides execute identical plans and are
    # timed best-of-3; outcome tallies must match exactly (the batched
    # backend is differentially pinned byte-identical to the scalar path).
    n_snapshots = len(prepared.snapshots) if prepared.snapshots else 1
    bat_trials = max(args.trials, 8 * n_snapshots)
    stack_scalar = CampaignConfig(trials=bat_trials, seed=args.seed,
                                  snapshot_every=-1, triage=True,
                                  fault_model="stack_frame")
    stack_batched = _replace(stack_scalar, batch=bat_trials)
    prepared_stack = prepare(workload, args.scheme, stack_scalar)
    stri_best = bat_best = float("inf")
    stri_counts = bat_counts = None
    for _ in range(3):
        stri_counts, seconds = _measure(
            workload, args.scheme, prepared_stack, stack_scalar, True
        )
        stri_best = min(stri_best, seconds)
        bat_counts, seconds = _measure(
            workload, args.scheme, prepared_stack, stack_batched, True
        )
        bat_best = min(bat_best, seconds)
    batched_speedup = stri_best / bat_best
    if bat_counts != stri_counts:
        print(f"[bench] ERROR: batched tallies diverge from scalar triage "
              f"(batched={bat_counts} scalar={stri_counts})", file=sys.stderr)
        return 1
    # Untimed instrumented pass for the lane accounting: the `batched`
    # sidecar event carries lanes/masked/divergence totals (sidecar-only so
    # the main log stays byte-identical to a scalar run's).
    from repro.obs.events import read_events as _read_events
    from repro.obs.events import resilience_log_path as _sidecar_path

    with tempfile.TemporaryDirectory() as obs_dir:
        batched_log = os.path.join(obs_dir, "batched.jsonl")
        os.environ["REPRO_FASTPATH"] = "1"
        run_campaign(workload, args.scheme,
                     _replace(stack_batched, obs_log=batched_log),
                     prepared=prepared_stack)
        os.environ.pop("REPRO_FASTPATH", None)
        sidecar_events, _ = _read_events(_sidecar_path(batched_log))
        batched_ev = next(
            e for e in sidecar_events if e.get("event") == "batched"
        )
    lane_occupancy = batched_ev["lanes"] / max(1, batched_ev["batches"])
    divergence_rate = batched_ev["diverged"] / max(1, batched_ev["lanes"])
    print(f"[bench] batched lanes    : {bat_trials / bat_best:7.1f} trials/s "
          f"(stack_frame, {bat_trials} trials, batch={bat_trials}; "
          f"{batched_speedup:.2f}x vs scalar triage "
          f"{bat_trials / stri_best:.1f} trials/s)", file=sys.stderr)
    print(f"[bench] batched stats    : {lane_occupancy:.1f} lanes/burst mean "
          f"occupancy, {100.0 * divergence_rate:.1f}% divergence "
          f"({batched_ev['masked']} masked in-sweep, "
          f"{batched_ev['diverged']} diverged)", file=sys.stderr)

    if not (ref_counts == fast_counts == snap_counts == tri_counts
            == par_counts == traced_counts):
        print("[bench] ERROR: modes disagree on outcomes "
              f"(ref={ref_counts} fast={fast_counts} snap={snap_counts} "
              f"triage={tri_counts} par={par_counts} traced={traced_counts})",
              file=sys.stderr)
        return 1
    print("[bench] differential ok  : snapshot, triage, and traced tallies "
          "match the from-scratch fast path", file=sys.stderr)

    obs_verified = None
    if args.obs_log:
        # Extra untimed pass with the trial event log enabled: the timed
        # numbers above stay obs-free, and the log must tally exactly to the
        # timed outcomes.
        from dataclasses import replace

        from repro.obs.events import read_events

        log_path = Path(args.obs_log)
        if log_path.exists():
            log_path.unlink()  # logs append; the bench wants a fresh one
        os.environ["REPRO_FASTPATH"] = "1"
        obs_result = run_campaign(
            workload, args.scheme,
            replace(parallel, obs_log=str(log_path)), prepared=prepared,
        )
        os.environ.pop("REPRO_FASTPATH", None)
        events, skipped = read_events(log_path)
        tally: dict = {}
        for event in events:
            if event.get("event") == "trial":
                tally[event["outcome"]] = tally.get(event["outcome"], 0) + 1
        logged = {k: tally.get(k, 0) for k in ref_counts}
        if skipped or logged != ref_counts or obs_result.counts() != ref_counts:
            print(f"[bench] ERROR: obs log disagrees with timed results "
                  f"(logged={logged} timed={ref_counts} skipped={skipped})",
                  file=sys.stderr)
            return 1
        obs_verified = {
            "log": str(log_path),
            "trial_events": sum(logged.values()),
            "tallies_match": True,
        }
        print(f"[bench] obs log verified : {sum(logged.values())} trial "
              f"events tally to the timed outcomes ({log_path})",
              file=sys.stderr)

    report = {
        "benchmark": "campaign_throughput",
        "workload": args.workload,
        "scheme": args.scheme,
        "trials": args.trials,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "outcome_counts": ref_counts,
        "preparation": {
            "plain_seconds": round(prepare_plain_s, 3),
            "with_snapshot_capture_seconds": round(prepare_capture_s, 3),
            "snapshot_capture_overhead_seconds": round(
                prepare_capture_s - prepare_plain_s, 3
            ),
            "with_occupancy_seconds": round(mem_best, 3),
            "occupancy_overhead_seconds": round(occupancy_overhead_s, 4),
            "occupancy_overhead_pct": round(occupancy_overhead_pct, 1),
            "occupancy_overhead_under_10pct": occupancy_overhead_pct < 10.0,
        },
        "serial_reference": {
            "trials_per_sec": round(args.trials / ref_s, 2),
            "seconds": round(ref_s, 3),
        },
        "serial_fastpath": {
            "trials_per_sec": round(args.trials / fast_s, 2),
            "seconds": round(fast_s, 3),
        },
        "snapshot_fastpath": {
            "snapshots": len(prepared.snapshots) if prepared.snapshots else 0,
            "trials_per_sec": round(args.trials / snap_s, 2),
            "seconds": round(snap_s, 3),
        },
        "triage": {
            "trials_per_sec": round(args.trials / tri_s, 2),
            "seconds": round(tri_s, 3),
        },
        "parallel_fastpath": {
            "jobs": args.jobs,
            "trials_per_sec": round(args.trials / par_s, 2),
            "seconds": round(par_s, 3),
        },
        "batched": {
            "fault_model": "stack_frame",
            "trials": bat_trials,
            "batch": bat_trials,
            "trials_per_sec": round(bat_trials / bat_best, 2),
            "seconds": round(bat_best, 3),
            "scalar_triage_trials_per_sec": round(bat_trials / stri_best, 2),
            "scalar_triage_seconds": round(stri_best, 3),
            "mean_lane_occupancy": round(lane_occupancy, 1),
            "divergence_rate": round(divergence_rate, 4),
            "lanes": batched_ev["lanes"],
            "masked_in_sweep": batched_ev["masked"],
            "diverged": batched_ev["diverged"],
            "divergence": batched_ev["divergence"],
        },
        "speedups": {
            "fastpath_serial_vs_reference": round(ref_s / fast_s, 2),
            "snapshot_vs_fastpath_serial": round(fast_s / snap_s, 2),
            "triage_vs_fastpath_serial": round(fast_s / tri_s, 2),
            "triage_vs_reference": round(ref_s / tri_s, 2),
            "parallel_vs_reference": round(ref_s / par_s, 2),
            "parallel_vs_fastpath_serial": round(fast_s / par_s, 2),
            "batched_vs_triage": round(batched_speedup, 2),
        },
        "trace_overhead": {
            "trials_per_sec": round(args.trials / traced_s, 2),
            "seconds": round(traced_s, 3),
            "overhead_pct": round(trace_overhead_pct, 1),
        },
        "differential": {
            "snapshot_vs_fastpath_tallies_match": snap_counts == fast_counts,
            "triage_vs_fastpath_tallies_match": tri_counts == fast_counts,
            "trace_vs_fastpath_tallies_match": traced_counts == fast_counts,
            "batched_vs_triage_tallies_match": bat_counts == stri_counts,
        },
        "notes": (
            "Throughput excludes one-time preparation. On a single-core "
            "runner parallel_fastpath cannot exceed serial_fastpath; the "
            "fast-path speedup is process-count independent. snapshot/triage "
            "modes restore golden-run snapshots and must tally identically "
            "to the from-scratch fast path (see 'differential'). Timed runs "
            "keep observability disabled; --obs-log adds a separate "
            "untimed verification pass. occupancy_overhead is the best-of-3 "
            "delta between a mem_transient prepare (occupancy capture fused "
            "into the snapshot run) and a single_bit prepare; the harness "
            "fails if it reaches 10% of the memory-model prepare. The "
            "batched section is a separate best-of-3 paired comparison "
            "(identical plans, scalar triage vs batched lanes) on a "
            "stack_frame campaign sized to several lanes per snapshot "
            "window — the regime batching targets; on the single_bit "
            "headline campaign, live trials' post-injection execution "
            "dominates and batching is roughly cost-neutral."
        ),
    }
    if obs_verified is not None:
        report["obs_verification"] = obs_verified
    payload = json.dumps(report, indent=2) + "\n"
    if args.output == "-":
        sys.stdout.write(payload)
    else:
        Path(args.output).write_text(payload)
        print(f"[bench] wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
