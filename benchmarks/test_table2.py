"""Regenerates paper Table II: the simulated core configuration."""

from repro.experiments import tables


def test_table2(benchmark, save_report):
    report = benchmark.pedantic(tables.table2_report, rounds=1, iterations=1)
    for fragment in ("256 entries", "192 entries", "Issue width", "32KB, 2-way"):
        assert fragment in report
    save_report("table2", report)
