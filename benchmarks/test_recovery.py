"""End-to-end recovery experiment (paper Section IV-D closed-loop).

Expected shape: on Dup + val chks binaries under checkpoint recovery, the
overwhelming majority of injected faults end with a fully correct output —
detections are rolled back and replayed, masked faults need nothing — and
only the residual USDCs escape.
"""

from repro.experiments import recovery_analysis


def test_recovery(benchmark, cache, save_report):
    rows = benchmark.pedantic(
        recovery_analysis.compute, args=(cache,), rounds=1, iterations=1
    )
    assert len(rows) == len(cache.settings.workloads)

    total_trials = sum(r.trials for r in rows)
    total_corrected = sum(r.corrected for r in rows)
    total_escaped = sum(r.escaped for r in rows)

    # recoveries do happen and fix the output
    assert total_corrected > 0
    # escapes are rare relative to the trial volume
    assert total_escaped / total_trials < 0.15

    mean_correct = sum(r.correct_output_rate for r in rows) / len(rows)
    assert mean_correct > 0.6

    save_report("recovery", recovery_analysis.report(cache))
