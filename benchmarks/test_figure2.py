"""Regenerates paper Figure 2: SDC breakdown on unmodified applications.

Expected shape: a majority of SDCs on soft workloads are *acceptable*
(the paper reports 77% ASDCs on average), and unacceptable SDCs are
substantially driven by large value changes — the opening for expected-value
checks.
"""

from repro.experiments import figure2


def test_figure2(benchmark, cache, save_report):
    rows = benchmark.pedantic(figure2.compute, args=(cache,), rounds=1, iterations=1)
    average = next(r for r in rows if r.benchmark == "average")

    # SDCs exist on unmodified soft applications...
    assert average.sdc > 0
    # ...and are dominated by acceptable corruptions (paper: ~77%).
    assert average.asdc_share > 0.3
    # totals are consistent
    for r in rows:
        assert r.asdc + r.usdc_large + r.usdc_small == r.sdc or abs(
            r.asdc + r.usdc_large + r.usdc_small - r.sdc
        ) < 1e-9

    save_report("figure2", figure2.report(cache))
