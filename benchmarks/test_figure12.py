"""Regenerates paper Figure 12: runtime overhead per scheme.

Expected shape (paper: 7.6% / 19.5% / 57%): Dup only is cheap, adding value
checks costs more, and full duplication costs by far the most — the
crossover that makes selective protection worthwhile.
"""

from repro.experiments import figure12


def test_figure12(benchmark, cache, save_report):
    rows = benchmark.pedantic(figure12.compute, args=(cache,), rounds=1, iterations=1)
    average = next(r for r in rows if r.benchmark == "average")

    # ordering: dup < dup+valchk < full duplication
    assert 0 < average.dup < average.dup_valchk < average.full_dup

    # rough factors: dup only stays light; full duplication is heavyweight
    assert average.dup < 0.30
    assert average.full_dup > 0.35

    # per-benchmark overheads are all positive for every scheme
    for r in rows:
        assert r.dup > 0 and r.dup_valchk > 0 and r.full_dup > 0

    save_report("figure12", figure12.report(cache))
