"""Micro-benchmarks of the substrate itself (pytest-benchmark timings).

These are the only files in the harness that use pytest-benchmark for actual
timing statistics — throughput of the interpreter, the compiler, the
profiling histogram, and the transforms.  They guard against performance
regressions in the simulator that would make campaigns impractically slow.
"""

import pytest

from repro.frontend import compile_source
from repro.profiling import OnlineHistogram, collect_profiles
from repro.sim import Interpreter, TimingModel
from repro.transforms import apply_scheme
from repro.workloads import get_workload

KERNEL = """
input int data[256];
output int out[1];
void main() {
    int acc = 0;
    for (int i = 0; i < 256; i++) {
        acc = (acc * 31 + data[i]) % 65521;
    }
    out[0] = acc;
}
"""


@pytest.fixture(scope="module")
def compiled():
    return compile_source(KERNEL)


@pytest.fixture(scope="module")
def inputs():
    return {"data": [(i * 7) % 251 for i in range(256)]}


def test_compile_throughput(benchmark):
    module = benchmark(compile_source, KERNEL)
    assert module.num_instructions() > 10


def test_interpreter_throughput(benchmark, compiled, inputs):
    def run():
        return Interpreter(compiled).run(inputs=inputs)

    result = benchmark(run)
    assert result.return_value is None or result.instructions > 1000


def test_interpreter_with_timing_model(benchmark, compiled, inputs):
    def run():
        timing = TimingModel()
        Interpreter(compiled, guard_mode="count", timing=timing).run(inputs=inputs)
        return timing.cycles

    cycles = benchmark(run)
    assert cycles > 1000


def test_histogram_insertion(benchmark):
    values = [(i * 2654435761) % 1000 for i in range(2000)]

    def run():
        h = OnlineHistogram(5)
        for v in values:
            h.add(v)
        return h

    h = benchmark(run)
    assert h.total == 2000


def test_profiling_run(benchmark, inputs):
    module = compile_source(KERNEL)

    def run():
        return collect_profiles(module, inputs=inputs)

    store = benchmark(run)
    assert len(store) > 0


def test_protection_transform(benchmark, inputs):
    def run():
        module = compile_source(KERNEL)
        profiles = collect_profiles(module, inputs=inputs)
        return apply_scheme(module, "dup_valchk", profiles=profiles)

    stats = benchmark(run)
    assert stats.num_duplicated > 0


def test_workload_build(benchmark):
    def run():
        return get_workload("g721dec").build_module()

    module = benchmark(run)
    assert module.num_instructions() > 50
