"""Regenerates the Section V false-positive analysis.

Expected shape: value checks profiled on the train input rarely misfire on
the test input (the paper reports 1 failure per 235K instructions; the
tolerable budget from Racunas et al. is 1 recovery per 1K instructions).
"""

from repro.experiments import false_positives


def test_false_positives(benchmark, cache, save_report):
    rows = benchmark.pedantic(
        false_positives.compute, args=(cache,), rounds=1, iterations=1
    )
    assert all(r.guard_evaluations > 0 for r in rows)

    # Every benchmark stays far inside the 1-per-1000-instructions recovery
    # budget the paper cites from Racunas et al.
    for r in rows:
        assert r.rate < 1 / 1000, f"{r.benchmark}: FP rate {r.rate} over budget"

    agg = false_positives.aggregate_instructions_per_failure(rows)
    assert agg > 10_000  # aggregate: sparser than 1 per 10K instructions

    save_report("false_positives", false_positives.report(cache))
