"""Regenerates paper Figure 10: static instrumentation fractions.

Expected shape: duplication touches a modest fraction of static IR
instructions (paper max 11.4%) and value checks land on a comparable
fraction (paper max 8.3%) — selective, not blanket, instrumentation.
"""

from repro.experiments import figure10


def test_figure10(benchmark, cache, save_report):
    rows = benchmark.pedantic(figure10.compute, args=(cache,), rounds=1, iterations=1)
    assert len(rows) == len(cache.settings.workloads)
    for r in rows:
        assert r.num_state_variables > 0
        assert 0 < r.frac_duplicated < 0.5     # selective, far below full dup
        assert r.frac_value_checks < 0.35

    mean_checks = sum(r.frac_value_checks for r in rows) / len(rows)
    assert mean_checks < 0.15  # paper: at most 8.3% per benchmark

    save_report("figure10", figure10.report(cache))
