"""Benchmark-harness fixtures.

Every ``benchmarks/test_*.py`` regenerates one table or figure of the paper.
A single session-scoped :class:`ExperimentCache` is shared across the whole
suite, so the expensive artifacts (fault-injection campaigns, prepared
modules, timing runs) are computed once: Figures 2, 11, and 13 all read the
same campaigns.

Scale with ``REPRO_TRIALS`` (default 60 trials per benchmark/scheme; the
paper used 1000).  Each report is printed and also written to
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentCache, ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _hermetic_campaign_cache(tmp_path_factory):
    """Benchmarks recompute their campaigns: a stale on-disk cache entry
    must never mask a regression in the simulator or campaign engine."""
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def cache(_hermetic_campaign_cache) -> ExperimentCache:
    return ExperimentCache(ExperimentSettings())


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return save
