"""Paper-vs-measured headline summary (abstract numbers side by side).

This is the repo's top-level acceptance check: the *shape* of the paper's
headline results must hold on our substrate — who wins, the ordering of the
schemes, and the USDC-vs-overhead crossover against full duplication.
"""

from repro.experiments import figure12, figure13, summary


def test_summary(benchmark, cache, save_report):
    rows = benchmark.pedantic(summary.compute, args=(cache,), rounds=1, iterations=1)
    by_metric = {r.metric: r for r in rows}

    # Overhead ordering matches the paper.
    assert (
        by_metric["overhead: Dup only"].measured
        < by_metric["overhead: Dup + val chks"].measured
        < by_metric["overhead: full duplication"].measured
    )

    # USDC ordering matches the paper.
    assert (
        by_metric["USDC: Dup + val chks"].measured
        <= by_metric["USDC: Dup only"].measured
        <= by_metric["USDC: original"].measured
    )

    # The headline crossover: Dup + val chks protects at least as well as
    # full duplication per unit cost (paper: 1.2% USDC @ 19.5% vs 1.4% @ 57%).
    dv = by_metric["USDC: Dup + val chks"]
    fd = by_metric["USDC: full duplication"]
    dv_cost = by_metric["overhead: Dup + val chks"].measured
    fd_cost = by_metric["overhead: full duplication"].measured
    assert dv_cost < fd_cost
    # close USDC protection at a fraction of the cost
    assert dv.measured <= max(fd.measured * 3, 0.03)

    save_report("summary", summary.report(cache))
