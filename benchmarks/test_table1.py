"""Regenerates paper Table I: the benchmark inventory."""

from repro.experiments import tables
from repro.workloads import BENCHMARK_NAMES


def test_table1(benchmark, save_report):
    report = benchmark.pedantic(tables.table1_report, rounds=1, iterations=1)
    assert all(name in report for name in BENCHMARK_NAMES)
    save_report("table1", report)
