"""Ablations of the design choices DESIGN.md calls out.

Each ablation toggles one heuristic of the protection pipeline on two
representative benchmarks (one integer-heavy decoder, one float ML kernel)
and reports static instrumentation plus estimated overhead:

* Optimization 1 (deepest-check-only) on/off;
* Optimization 2 (check-terminated duplication) on/off;
* load-terminated producer chains (the Figure 7 policy is always on — here
  we quantify what terminating at loads saves by comparing against full
  duplication's load-free shadowing of everything);
* histogram bin count B (paper: 5);
* range padding (false-positive/coverage trade-off).
"""

from dataclasses import replace

import pytest

from repro.experiments.reporting import format_table, pct
from repro.profiling import collect_profiles
from repro.sim import Interpreter, TimingModel
from repro.transforms import ProtectionConfig, apply_scheme
from repro.workloads import get_workload

BENCHES = ("g721dec", "kmeans")


def instrument(workload_name: str, config: ProtectionConfig):
    """Build + protect one workload; returns (stats, overhead, false positives)."""
    workload = get_workload(workload_name)
    module = workload.build_module()

    base_module = workload.build_module()
    base_timing = TimingModel()
    interp = Interpreter(base_module, guard_mode="count", timing=base_timing)
    workload.run(base_module, workload.test_inputs(), interpreter=interp)

    profiles = collect_profiles(
        module,
        inputs=workload.train_inputs(),
        num_bins=config.histogram_bins,
        top_capacity=config.top_value_capacity,
    )
    stats = apply_scheme(module, "dup_valchk", profiles=profiles, config=config)

    timing = TimingModel()
    interp = Interpreter(module, guard_mode="count", timing=timing)
    _, result = workload.run(module, workload.test_inputs(), interpreter=interp)
    overhead = timing.cycles / base_timing.cycles - 1.0
    return stats, overhead, result.guard_stats.total_failures


def test_ablation_optimizations(benchmark, save_report):
    """Opt 1 and Opt 2 both reduce instrumentation without losing checks
    that matter."""

    def run():
        rows = []
        for name in BENCHES:
            for label, cfg in [
                ("both opts", ProtectionConfig()),
                ("no Opt1", ProtectionConfig(optimization1=False)),
                ("no Opt2", ProtectionConfig(optimization2=False)),
                ("neither", ProtectionConfig(optimization1=False, optimization2=False)),
            ]:
                stats, overhead, fps = instrument(name, cfg)
                rows.append((name, label, stats.num_duplicated,
                             stats.num_value_checks, pct(overhead), fps))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_key = {(r[0], r[1]): r for r in rows}
    for name in BENCHES:
        # Opt 1 prunes checks: disabling it can only add checks.
        assert by_key[(name, "no Opt1")][3] >= by_key[(name, "both opts")][3]
        # Opt 2 terminates chains: disabling it can only add duplicated instrs.
        assert by_key[(name, "no Opt2")][2] >= by_key[(name, "both opts")][2]

    save_report(
        "ablation_optimizations",
        format_table(
            ["benchmark", "config", "dup", "checks", "overhead", "false pos"],
            rows,
            title="Ablation: Optimizations 1 and 2 (dup_valchk scheme)",
        ),
    )


def test_ablation_histogram_bins(benchmark, save_report):
    """The paper fixes B=5; sweeping B shows check counts are stable around
    it (the compact-range step absorbs bin-budget differences)."""

    def run():
        rows = []
        for bins in (3, 5, 9, 17):
            stats, overhead, fps = instrument(
                "g721dec", ProtectionConfig(histogram_bins=bins)
            )
            rows.append(("g721dec", bins, stats.num_value_checks, pct(overhead), fps))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    checks = [r[2] for r in rows]
    assert max(checks) - min(checks) <= max(2, max(checks) // 2)

    save_report(
        "ablation_bins",
        format_table(
            ["benchmark", "B (bins)", "checks", "overhead", "false pos"],
            rows,
            title="Ablation: histogram bin budget (Algorithm 1)",
        ),
    )


def test_ablation_range_padding(benchmark, save_report):
    """Tighter ranges catch more but misfire more: the padding knob trades
    false positives against check tightness (Section V discussion)."""

    def run():
        rows = []
        for label, pad, slack in [
            ("tight (0.1x)", 0.1, 0.0),
            ("default (1.0x)", 1.0, 0.5),
            ("loose (4.0x)", 4.0, 2.0),
        ]:
            cfg = ProtectionConfig(
                range_pad_factor=pad, magnitude_slack=slack, range_pad_min=1.0
            )
            stats, overhead, fps = instrument("kmeans", cfg)
            rows.append(("kmeans", label, stats.num_value_checks, pct(overhead), fps))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    fps_by_label = {r[1]: r[4] for r in rows}
    # loosening padding never increases false positives
    assert fps_by_label["loose (4.0x)"] <= fps_by_label["tight (0.1x)"]

    save_report(
        "ablation_padding",
        format_table(
            ["benchmark", "padding", "checks", "overhead", "false pos"],
            rows,
            title="Ablation: range-check padding vs. false positives",
        ),
    )
