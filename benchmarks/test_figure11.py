"""Regenerates paper Figure 11: fault-outcome classification per scheme.

Expected shape: protection converts USDCs into SWDetects — average USDC
falls monotonically Original → Dup only → Dup + val chks (paper: 3.4% →
1.8% → 1.2%), and fault coverage (Masked + SWDetect + HWDetect) rises.
"""

from repro.experiments import figure11


def test_figure11(benchmark, cache, save_report):
    rows = benchmark.pedantic(figure11.compute, args=(cache,), rounds=1, iterations=1)
    avgs = figure11.averages(cache)

    # every column sums to 100%
    for r in rows:
        assert abs(r.masked + r.swdetect + r.hwdetect + r.failure + r.usdc - 1.0) < 1e-9

    # the original binary has no software checks
    assert avgs["original"].swdetect == 0.0
    # protected binaries detect in software
    assert avgs["dup"].swdetect > 0
    assert avgs["dup_valchk"].swdetect > 0

    # headline shape: USDCs shrink with increasing protection
    assert avgs["dup"].usdc <= avgs["original"].usdc
    assert avgs["dup_valchk"].usdc <= avgs["dup"].usdc

    # coverage improves
    assert avgs["dup_valchk"].coverage >= avgs["original"].coverage

    save_report("figure11", figure11.report(cache))
