"""Companion experiment: branch-target faults and signature checking.

The paper's fault coverage excludes faults on branch targets and points at
signature-based control-flow checking as the complementary protection
(Section IV-C).  This bench quantifies that claim on our substrate: inject
``control``-kind faults (a branch jumps to a random wrong block) into
unprotected and CFCSS-protected binaries and compare outcomes.
"""

from repro.experiments.reporting import format_table, pct
from repro.experiments.runner import default_trials
from repro.sim import GuardTrap, Interpreter, InjectionPlan, SimTrap
from repro.transforms import protect_control_flow
from repro.workloads import get_workload

BENCHES = ("g721dec", "tiff2bw", "kmeans")


def survey(module, workload, trials, protected):
    inputs = workload.test_inputs()
    golden_interp = Interpreter(module, guard_mode="count")
    _, golden_run = workload.run(module, inputs, interpreter=golden_interp)
    golden = {
        name: golden_interp.read_global(name)
        for name in workload.output_names(module)
    }
    outcomes = {"masked": 0, "swdetect": 0, "symptom": 0, "sdc": 0}
    for seed in range(trials):
        interp = Interpreter(module, guard_mode="detect")
        cycle = 1 + (seed * 7919) % golden_run.instructions
        plan = InjectionPlan(cycle=cycle, bit=0, seed=seed, kind="control")
        try:
            interp.run(inputs=inputs, injection=plan,
                       max_instructions=golden_run.instructions * 10 + 10_000)
        except GuardTrap:
            outcomes["swdetect"] += 1
            continue
        except SimTrap:
            outcomes["symptom"] += 1
            continue
        same = all(
            interp.read_global(name) == golden[name] for name in golden
        )
        outcomes["masked" if same else "sdc"] += 1
    return outcomes


def test_branch_target_faults(benchmark, save_report):
    trials = max(default_trials() // 2, 10)

    def run():
        rows = []
        for name in BENCHES:
            workload = get_workload(name)
            plain = workload.build_module()
            plain_out = survey(plain, workload, trials, protected=False)

            signed = workload.build_module()
            protect_control_flow(signed)
            signed_out = survey(signed, workload, trials, protected=True)
            rows.append((name, "unprotected", plain_out))
            rows.append((name, "cfcss", signed_out))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    for name in BENCHES:
        plain = next(o for n, label, o in rows if n == name and label == "unprotected")
        signed = next(o for n, label, o in rows if n == name and label == "cfcss")
        # signatures convert silent corruptions into detections
        assert signed["swdetect"] > 0
        assert signed["sdc"] <= plain["sdc"]

    table = format_table(
        ["benchmark", "binary", "masked", "SWDetect", "symptom", "SDC"],
        [
            (n, label, o["masked"], o["swdetect"], o["symptom"], o["sdc"])
            for n, label, o in rows
        ],
        title=f"Branch-target faults ({trials} control-fault injections each): "
              "CFCSS signature checking",
    )
    save_report("branch_faults", table)
