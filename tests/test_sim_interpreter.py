"""Interpreter semantics: arithmetic, control flow, traps, and guard modes."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir import (
    F64,
    I32,
    Constant,
    GuardEq,
    IRBuilder,
    Module,
)
from repro.sim import (
    SimTrap,
    ArithmeticTrap,
    GuardTrap,
    InjectionPlan,
    Interpreter,
    MemoryTrap,
    SimConfig,
    StackOverflowTrap,
    TimeoutTrap,
)
from tests.conftest import build_sum_loop, sum_loop_reference

i32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


def run_binop(opcode: str, a, b, type_=I32):
    m = Module()
    fn = m.add_function("main", type_)
    builder = IRBuilder(fn.add_block("entry"))
    v = builder.binop(opcode, Constant(type_, a), Constant(type_, b))
    builder.ret(v)
    return Interpreter(m).run().return_value


class TestIntegerSemantics:
    @given(i32, i32)
    def test_add_wraps_like_c(self, a, b):
        assert run_binop("add", a, b) == I32.wrap(a + b)

    @given(i32, i32)
    def test_mul_wraps_like_c(self, a, b):
        assert run_binop("mul", a, b) == I32.wrap(a * b)

    @given(i32, i32.filter(lambda v: v != 0))
    def test_sdiv_truncates_toward_zero(self, a, b):
        expected = I32.wrap(int(abs(a) // abs(b)) * (1 if (a < 0) == (b < 0) else -1))
        assert run_binop("sdiv", a, b) == expected

    @given(i32, i32.filter(lambda v: v != 0))
    def test_srem_sign_follows_dividend(self, a, b):
        r = run_binop("srem", a, b)
        if r != 0:
            assert (r < 0) == (a < 0)
        q = run_binop("sdiv", a, b)
        assert I32.wrap(q * b + r) == a

    @given(i32, st.integers(min_value=0, max_value=31))
    def test_shifts(self, a, sh):
        assert run_binop("shl", a, sh) == I32.wrap(a << sh)
        assert run_binop("lshr", a, sh) == I32.wrap((a & 0xFFFFFFFF) >> sh)
        assert run_binop("ashr", a, sh) == I32.wrap(a >> sh)

    def test_shift_amount_masked(self):
        # hardware masks the shift amount to the register width
        assert run_binop("shl", 1, 33) == 2

    def test_division_by_zero_traps(self):
        with pytest.raises(ArithmeticTrap):
            run_binop("sdiv", 1, 0)
        with pytest.raises(ArithmeticTrap):
            run_binop("srem", 1, 0)

    def test_int_min_div_minus_one_wraps(self):
        assert run_binop("sdiv", -(1 << 31), -1) == -(1 << 31)


class TestFloatSemantics:
    def test_float_division_by_zero_gives_inf(self):
        assert run_binop("fdiv", 1.0, 0.0, F64) == math.inf
        assert run_binop("fdiv", -1.0, 0.0, F64) == -math.inf

    def test_zero_over_zero_gives_nan(self):
        assert math.isnan(run_binop("fdiv", 0.0, 0.0, F64))

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_fadd_matches_python(self, a, b):
        assert run_binop("fadd", a, b, F64) == a + b


class TestExecution:
    def test_loop_matches_reference(self, sum_loop):
        module, h = sum_loop
        data = [(i * 13) % 97 for i in range(h["n"])]
        result = Interpreter(module).run(inputs={"src": data})
        assert result.return_value == sum_loop_reference(data, h["mul"])

    def test_instruction_count_is_deterministic(self, sum_loop):
        module, _ = sum_loop
        data = list(range(16))
        r1 = Interpreter(module).run(inputs={"src": data})
        r2 = Interpreter(module).run(inputs={"src": data})
        assert r1.instructions == r2.instructions

    def test_timeout_trap(self):
        src = "void main() { while (1) { } }"
        module = compile_source(src)
        with pytest.raises(TimeoutTrap):
            Interpreter(module).run(max_instructions=1000)

    def test_out_of_bounds_traps(self):
        src = """
        input int data[4];
        output int out[1];
        void main() { out[0] = data[100]; }
        """
        module = compile_source(src)
        with pytest.raises(MemoryTrap):
            Interpreter(module).run()

    def test_call_depth_limit(self):
        src = "int f(int n) { return f(n + 1); } void main() { f(0); }"
        module = compile_source(src)
        with pytest.raises(StackOverflowTrap):
            Interpreter(module).run()

    def test_wrong_arity_rejected(self, sum_loop):
        module, _ = sum_loop
        with pytest.raises(ValueError, match="expects 0 args"):
            Interpreter(module).run(args=[1])

    def test_oversized_input_rejected(self, sum_loop):
        module, _ = sum_loop
        with pytest.raises(ValueError, match="max"):
            Interpreter(module).run(inputs={"src": [0] * 99})


class TestGuards:
    def _guarded_module(self):
        """main returns 5 but a guard comparing 1 != 2 always fires."""
        m = Module()
        fn = m.add_function("main", I32)
        b = IRBuilder(fn.add_block("entry"))
        b.guard_eq(b.const(1), b.const(2), guard_id=3)
        b.ret(b.const(5))
        return m

    def test_detect_mode_raises(self):
        with pytest.raises(GuardTrap) as exc:
            Interpreter(self._guarded_module(), guard_mode="detect").run()
        assert exc.value.guard_id == 3

    def test_count_mode_continues(self):
        interp = Interpreter(self._guarded_module(), guard_mode="count")
        result = interp.run()
        assert result.return_value == 5
        assert result.guard_stats.total_failures == 1
        assert result.guard_stats.failures_by_guard == {3: 1}

    def test_disabled_guard_does_not_raise(self):
        interp = Interpreter(
            self._guarded_module(), guard_mode="detect", disabled_guards={3}
        )
        assert interp.run().return_value == 5

    def test_unarmed_guard_does_not_raise_before_injection(self):
        """With an injection planned far in the future, guards stay unarmed."""
        interp = Interpreter(self._guarded_module(), guard_mode="detect")
        result = interp.run(injection=InjectionPlan(cycle=10**9, bit=0))
        assert result.return_value == 5
        assert result.guard_stats.total_failures == 1

    def test_bad_guard_mode_rejected(self):
        with pytest.raises(ValueError):
            Interpreter(Module(), guard_mode="maybe")


class TestInjection:
    def test_injection_lands_and_is_recorded(self, sum_loop):
        module, _ = sum_loop
        data = list(range(16))
        interp = Interpreter(module)
        interp.run(inputs={"src": data}, injection=InjectionPlan(cycle=50, bit=3, seed=1))
        record = interp.injection_record
        assert record is not None and record.landed

    def test_high_bit_flip_changes_output(self, sum_loop):
        """Some bit-31 flip on a live value must corrupt the result."""
        module, h = sum_loop
        data = list(range(16))
        golden = Interpreter(module).run(inputs={"src": data}).return_value
        corrupted = 0
        for seed in range(20):
            interp = Interpreter(module)
            try:
                r = interp.run(
                    inputs={"src": data},
                    injection=InjectionPlan(cycle=60, bit=31, seed=seed),
                )
            except SimTrap:
                corrupted += 1  # pointer flip → symptom: also a visible fault
                continue
            if r.return_value != golden:
                corrupted += 1
        assert corrupted > 0

    def test_injection_after_program_end_is_harmless(self, sum_loop):
        module, _ = sum_loop
        data = list(range(16))
        golden = Interpreter(module).run(inputs={"src": data}).return_value
        interp = Interpreter(module)
        r = interp.run(
            inputs={"src": data}, injection=InjectionPlan(cycle=10**9, bit=3)
        )
        assert r.return_value == golden
        assert interp.injection_record is None
