"""Fault-injection campaign tests: classification, statistics, determinism."""

import math

import pytest

from repro.faultinjection import (
    CampaignConfig,
    CampaignResult,
    Outcome,
    TrialResult,
    confidence_interval,
    margin_of_error,
    prepare,
    run_campaign,
    trials_for_margin,
)
from repro.workloads import get_workload


class TestStats:
    def test_paper_margin_at_1000_trials(self):
        # paper Section IV-C: 3.1% margin at 95% confidence for n=1000
        assert margin_of_error(1000) == pytest.approx(0.031, abs=0.001)

    def test_margin_shrinks_with_n(self):
        assert margin_of_error(4000) < margin_of_error(1000)

    def test_zero_trials(self):
        assert margin_of_error(0) == 1.0

    def test_confidence_interval_clipped(self):
        lo, hi = confidence_interval(0.01, 50)
        assert lo == 0.0 and hi < 1.0

    def test_trials_for_margin_inverse(self):
        n = trials_for_margin(0.031)
        assert 990 <= n <= 1010

    def test_trials_for_margin_validates(self):
        with pytest.raises(ValueError):
            trials_for_margin(0)


class TestCampaignResultAggregation:
    def _result(self):
        r = CampaignResult("w", "original")
        outcomes = [
            Outcome.MASKED, Outcome.MASKED, Outcome.HWDETECT, Outcome.SWDETECT,
            Outcome.FAILURE, Outcome.USDC, Outcome.USDC, Outcome.MASKED,
        ]
        for o in outcomes:
            r.trials.append(TrialResult(outcome=o, injection_cycle=1, bit=0))
        # mark one masked trial as an acceptable SDC and tag USDC magnitudes
        r.trials[0].is_sdc = True
        r.trials[0].is_asdc = True
        r.trials[5].is_sdc = True
        r.trials[5].change_magnitude = 100.0
        r.trials[6].is_sdc = True
        r.trials[6].change_magnitude = 0.01
        return r

    def test_fractions(self):
        r = self._result()
        assert r.masked == pytest.approx(3 / 8)
        assert r.hwdetect == pytest.approx(1 / 8)
        assert r.swdetect == pytest.approx(1 / 8)
        assert r.failure == pytest.approx(1 / 8)
        assert r.usdc == pytest.approx(2 / 8)
        assert r.coverage == pytest.approx(5 / 8)

    def test_sdc_views(self):
        r = self._result()
        assert r.sdc == pytest.approx(3 / 8)
        assert r.asdc == pytest.approx(1 / 8)

    def test_usdc_change_split(self):
        r = self._result()
        split = r.usdc_by_change(threshold=4.0)
        assert split["large"] == pytest.approx(1 / 8)
        assert split["small"] == pytest.approx(1 / 8)

    def test_counts(self):
        assert self._result().counts()["Masked"] == 3

    def test_empty_result(self):
        r = CampaignResult("w", "s")
        assert r.masked == 0.0 and r.sdc == 0.0 and r.coverage == 0.0


class TestPrepare:
    def test_prepare_produces_golden(self, fast_campaign_config):
        prepared = prepare(get_workload("g721dec"), "original", fast_campaign_config)
        assert prepared.golden_instructions > 1000
        assert prepared.golden_outputs
        assert prepared.scheme_stats.scheme == "original"

    def test_dup_valchk_profiles_on_train(self, fast_campaign_config):
        prepared = prepare(get_workload("g721dec"), "dup_valchk", fast_campaign_config)
        assert prepared.scheme_stats.num_value_checks > 0
        assert prepared.golden_guard_evaluations > 0

    def test_swap_train_test(self, fast_campaign_config):
        from dataclasses import replace

        config = replace(fast_campaign_config, swap_train_test=True)
        normal = prepare(get_workload("g721dec"), "original", fast_campaign_config)
        swapped = prepare(get_workload("g721dec"), "original", config)
        # the run input differs (train audio is longer than test audio)
        assert normal.golden_instructions != swapped.golden_instructions


class TestRunCampaign:
    def test_every_trial_classified(self, fast_campaign_config):
        result = run_campaign(get_workload("g721dec"), "original", fast_campaign_config)
        assert result.num_trials == fast_campaign_config.trials
        assert all(isinstance(t.outcome, Outcome) for t in result.trials)

    def test_deterministic_across_runs(self, fast_campaign_config):
        a = run_campaign(get_workload("g721dec"), "original", fast_campaign_config)
        b = run_campaign(get_workload("g721dec"), "original", fast_campaign_config)
        assert [t.outcome for t in a.trials] == [t.outcome for t in b.trials]
        assert [t.injection_cycle for t in a.trials] == [
            t.injection_cycle for t in b.trials
        ]

    def test_different_seeds_differ(self, fast_campaign_config):
        from dataclasses import replace

        a = run_campaign(get_workload("g721dec"), "original", fast_campaign_config)
        b = run_campaign(
            get_workload("g721dec"), "original",
            replace(fast_campaign_config, seed=99),
        )
        assert [t.injection_cycle for t in a.trials] != [
            t.injection_cycle for t in b.trials
        ]

    def test_protected_scheme_detects(self):
        """With enough trials, a protected binary must show SWDetects."""
        config = CampaignConfig(trials=30, seed=5)
        result = run_campaign(get_workload("g721dec"), "dup", config)
        assert result.swdetect > 0

    def test_original_never_swdetects(self, fast_campaign_config):
        result = run_campaign(get_workload("tiff2bw"), "original", fast_campaign_config)
        assert result.swdetect == 0.0
