"""Tests for the report-rendering helpers (tables, percentages, bar charts)."""

import pytest

from repro.experiments.reporting import format_table, pct, stacked_bar_chart


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [("a", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # the dash ruler reflects the widest cell of each column
        ruler = lines[1].split("  ")
        assert len(ruler[0]) == len("longer")
        assert len(ruler[1]) == len("22")

    def test_title(self):
        text = format_table(["x"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(["x"], [(0.123456789,)])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestPct:
    def test_basic(self):
        assert pct(0.073) == "7.3%"
        assert pct(0.5, 0) == "50%"
        assert pct(1.0) == "100.0%"


class TestStackedBarChart:
    def test_full_bar(self):
        chart = stacked_bar_chart(
            [("x", [0.5, 0.5])], series=["a", "b"], width=10
        )
        bar_line = chart.splitlines()[-1]
        assert "█████▓▓▓▓▓" in bar_line
        assert "100.0%" in bar_line

    def test_legend_present(self):
        chart = stacked_bar_chart([("x", [1.0])], series=["only"])
        assert "legend: █ only" in chart

    def test_total_scales_bars(self):
        half = stacked_bar_chart([("x", [0.25])], series=["a"], width=20, total=0.5)
        bar = half.splitlines()[-1]
        assert bar.count("█") == 10  # 0.25 of total 0.5 = half the width

    def test_never_overflows_width(self):
        chart = stacked_bar_chart(
            [("x", [0.7, 0.7])], series=["a", "b"], width=10
        )
        bar_line = chart.splitlines()[-1]
        inner = bar_line.split("|")[1]
        assert len(inner) == 10

    def test_row_arity_checked(self):
        with pytest.raises(ValueError, match="expected 2"):
            stacked_bar_chart([("x", [0.5])], series=["a", "b"])

    def test_series_count_limited(self):
        with pytest.raises(ValueError):
            stacked_bar_chart([("x", [0.1] * 7)], series=list("abcdefg"))
