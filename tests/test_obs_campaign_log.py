"""Campaign observability integration: trial logs, provenance, progress.

The acceptance bar: a campaign run with an obs log produces a JSONL record
stream whose per-trial outcome tallies exactly match the returned
:class:`CampaignResult`, with ``jobs=N`` logs byte-identical to ``jobs=1``;
disk-cache hits emit ``cache_hit`` provenance instead of going dark; and the
progress printer flushes its final line on completion.
"""

from __future__ import annotations

import io
import json
from collections import Counter
from dataclasses import replace

import pytest

from repro.experiments import ExperimentCache, ExperimentSettings
from repro.faultinjection import (
    CampaignCache,
    CampaignConfig,
    Outcome,
    ProgressPrinter,
    TrialResult,
    prepare,
    run_campaign,
)
from repro.faultinjection.campaign import resolve_obs_config
from repro.obs import metrics as obs_metrics
from repro.obs.events import read_events
from repro.obs.metrics import MetricsRegistry
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def prepared_tiff():
    config = CampaignConfig(trials=10, seed=5)
    return config, prepare(get_workload("tiff2bw"), "dup_valchk", config)


@pytest.fixture(autouse=True)
def _fresh_global_registry():
    yield
    obs_metrics.reset_global()


# ---------------------------------------------------------------------------
# trial log contents
# ---------------------------------------------------------------------------


def test_log_tallies_match_campaign_result(tmp_path, prepared_tiff):
    config, prepared = prepared_tiff
    log = tmp_path / "c.jsonl"
    cfg = replace(config, obs_log=str(log))
    result = run_campaign(prepared.workload, "dup_valchk", cfg, prepared=prepared)

    events, skipped = read_events(log)
    assert skipped == 0
    trials = [e for e in events if e["event"] == "trial"]
    assert len(trials) == result.num_trials
    tally = Counter(e["outcome"] for e in trials)
    assert {o.value: tally.get(o.value, 0) for o in Outcome} == result.counts()
    # plan order, one record per trial, matching the result's plans
    assert [e["i"] for e in trials] == list(range(len(trials)))
    assert [e["cycle"] for e in trials] == [
        t.injection_cycle for t in result.trials
    ]
    # header and footer bracket the trials
    assert events[0]["event"] == "campaign_begin"
    assert events[0]["workload"] == "tiff2bw"
    assert events[-1]["event"] == "campaign_end"
    assert events[-1]["counts"] == result.counts()


def test_detected_trials_carry_check_and_latency(tmp_path, prepared_tiff):
    config, prepared = prepared_tiff
    log = tmp_path / "c.jsonl"
    cfg = replace(config, trials=30, obs_log=str(log))
    result = run_campaign(prepared.workload, "dup_valchk", cfg, prepared=prepared)
    sw = [t for t in result.trials if t.outcome is Outcome.SWDETECT]
    assert sw, "expected at least one SWDetect in 30 trials"
    events, _ = read_events(log)
    sw_events = [e for e in events
                 if e["event"] == "trial" and e["outcome"] == "SWDetect"]
    assert len(sw_events) == len(sw)
    for event in sw_events:
        assert event["check"] is not None
        assert event["check_kind"] in ("eq", "range", "values")
        assert event["trap"] == "guard"
        assert event["latency"] == event["event_cycle"] - event["cycle"] >= 0


def test_serial_and_parallel_logs_byte_identical(tmp_path, prepared_tiff):
    config, prepared = prepared_tiff
    serial_log = tmp_path / "serial.jsonl"
    parallel_log = tmp_path / "parallel.jsonl"
    serial = run_campaign(
        prepared.workload, "dup_valchk",
        replace(config, obs_log=str(serial_log)), prepared=prepared,
    )
    parallel = run_campaign(
        prepared.workload, "dup_valchk",
        replace(config, jobs=4, obs_log=str(parallel_log)), prepared=prepared,
    )
    assert parallel.trials == serial.trials
    assert parallel_log.read_bytes() == serial_log.read_bytes()
    assert not list(tmp_path.glob("*.shard-*"))  # all shards merged + removed


def test_obs_env_var_enables_logging(tmp_path, monkeypatch, prepared_tiff):
    config, prepared = prepared_tiff
    log = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_OBS", str(log))
    run_campaign(prepared.workload, "dup_valchk", config, prepared=prepared)
    events, _ = read_events(log)
    assert any(e["event"] == "trial" for e in events)


def test_no_log_without_configuration(tmp_path, monkeypatch, prepared_tiff):
    config, prepared = prepared_tiff
    monkeypatch.delenv("REPRO_OBS", raising=False)
    run_campaign(prepared.workload, "dup_valchk", config, prepared=prepared)
    assert list(tmp_path.iterdir()) == []


def test_resolve_obs_config_explicit_wins(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "/env/path.jsonl")
    monkeypatch.setenv("REPRO_OBS_TIMING", "1")
    explicit = CampaignConfig(obs_log="/explicit.jsonl")
    resolved = resolve_obs_config(explicit)
    assert resolved.obs_log == "/explicit.jsonl"
    assert resolved.obs_timing  # env fills the gap
    monkeypatch.delenv("REPRO_OBS_TIMING", raising=False)
    monkeypatch.delenv("REPRO_OBS", raising=False)
    plain = resolve_obs_config(CampaignConfig())
    assert plain.obs_log is None and not plain.obs_timing


def test_timing_opt_in_adds_wall_ms(tmp_path, prepared_tiff):
    config, prepared = prepared_tiff
    log = tmp_path / "timed.jsonl"
    cfg = replace(config, trials=4, obs_log=str(log), obs_timing=True)
    run_campaign(prepared.workload, "dup_valchk", cfg, prepared=prepared)
    events, _ = read_events(log)
    trials = [e for e in events if e["event"] == "trial"]
    assert trials and all("wall_ms" in e for e in trials)


# ---------------------------------------------------------------------------
# campaign metrics
# ---------------------------------------------------------------------------


def test_campaign_records_metrics_when_enabled(tmp_path, prepared_tiff):
    config, prepared = prepared_tiff
    registry = obs_metrics.enable_global()
    registry.reset()
    result = run_campaign(
        prepared.workload, "dup_valchk",
        replace(config, obs_log=str(tmp_path / "m.jsonl")), prepared=prepared,
    )
    snap = registry.snapshot()
    assert snap["campaign.trials"] == result.num_trials
    assert snap["campaign.campaigns"] == 1
    for outcome, count in result.counts().items():
        if count:
            assert snap[f"campaign.outcome.{outcome}"] == count
    detected = sum(1 for t in result.trials if t.detection_latency is not None)
    if detected:
        assert snap["campaign.detection_latency_cycles"]["count"] == detected
    assert snap["sim.instructions"] > 0  # interpreter-level funnel fired


# ---------------------------------------------------------------------------
# cache-hit provenance
# ---------------------------------------------------------------------------


def test_cache_hit_emits_provenance_event(tmp_path):
    obs_log = tmp_path / "obs.jsonl"
    disk = CampaignCache(root=tmp_path / "cache", enabled=True)
    settings = ExperimentSettings(
        trials=4, workloads=("tiff2bw",), obs_log=str(obs_log)
    )

    first = ExperimentCache(settings, disk_cache=disk)
    original = first.campaign("tiff2bw", "dup")
    events, _ = read_events(obs_log)
    assert sum(e["event"] == "trial" for e in events) == 4
    assert not any(e["event"] == "cache_hit" for e in events)

    second = ExperimentCache(settings, disk_cache=disk)
    restored = second.campaign("tiff2bw", "dup")
    assert restored.counts() == original.counts()
    events, _ = read_events(obs_log)
    hits = [e for e in events if e["event"] == "cache_hit"]
    assert len(hits) == 1
    hit = hits[0]
    assert hit["workload"] == "tiff2bw" and hit["scheme"] == "dup"
    assert len(hit["key"]) == 64  # sha256 hex
    assert hit["meta"]["trials"] == 4
    assert hit["meta"]["created_unix"] > 0
    assert "created_iso" in hit["meta"]
    # no new trial events were appended by the cached run
    assert sum(e["event"] == "trial" for e in events) == 4


def test_cache_entry_meta_round_trip(tmp_path, prepared_tiff):
    config, prepared = prepared_tiff
    result = run_campaign(prepared.workload, "dup_valchk",
                          replace(config, trials=3), prepared=prepared)
    cache = CampaignCache(root=tmp_path, enabled=True)
    cache.put("k" * 64, result)
    entry = cache.get_entry("k" * 64)
    assert entry is not None
    restored, meta = entry
    assert restored.trials == result.trials
    assert meta["workload"] == "tiff2bw" and meta["trials"] == 3


def test_legacy_unwrapped_cache_entry_still_readable(tmp_path, prepared_tiff):
    config, prepared = prepared_tiff
    result = run_campaign(prepared.workload, "dup_valchk",
                          replace(config, trials=3), prepared=prepared)
    cache = CampaignCache(root=tmp_path, enabled=True)
    (tmp_path / "campaign-legacy.json").write_text(json.dumps(result.to_dict()))
    entry = cache.get_entry("legacy")
    assert entry is not None
    restored, meta = entry
    assert restored.trials == result.trials
    assert meta == {}


# ---------------------------------------------------------------------------
# progress printer
# ---------------------------------------------------------------------------


def _trial(outcome=Outcome.MASKED):
    return TrialResult(outcome=outcome, injection_cycle=1, bit=0)


def test_progress_finish_flushes_unprinted_tail():
    stream = io.StringIO()
    # total overestimates the executed trials (partially cached sweep), and
    # the rate limit swallows every line after the first: without finish()
    # the last trials would go silently unprinted.
    printer = ProgressPrinter(total=100, stream=stream, min_interval=3600.0)
    for _ in range(5):
        printer(_trial())
    assert "[1/100]" in stream.getvalue()
    assert "[5/100]" not in stream.getvalue()
    printer.finish()
    assert "[5/100]" in stream.getvalue()
    assert "(done)" in stream.getvalue()


def test_progress_finish_is_idempotent():
    stream = io.StringIO()
    printer = ProgressPrinter(total=2, stream=stream, min_interval=0.0)
    printer(_trial())
    printer(_trial())
    before = stream.getvalue()
    printer.finish()
    printer.finish()
    assert stream.getvalue() == before  # final state already printed


def test_progress_finish_no_output_for_zero_trials():
    stream = io.StringIO()
    printer = ProgressPrinter(total=10, stream=stream)
    printer.finish()
    assert stream.getvalue() == ""


def test_progress_routes_through_metrics_registry():
    registry = MetricsRegistry()
    stream = io.StringIO()
    printer = ProgressPrinter(total=3, stream=stream, registry=registry)
    printer(_trial(Outcome.MASKED))
    printer(_trial(Outcome.SWDETECT))
    printer(_trial(Outcome.SWDETECT))
    snap = registry.snapshot()
    assert snap["progress.trials"] == 3
    assert snap["progress.outcome.SWDetect"] == 2
    assert snap["progress.outcome.Masked"] == 1
    assert printer.counts[Outcome.SWDETECT] == 2


def test_progress_replaces_disabled_registry():
    printer = ProgressPrinter(
        total=1, stream=io.StringIO(),
        registry=MetricsRegistry(enabled=False),
    )
    printer(_trial())
    assert printer.counts[Outcome.MASKED] == 1
