; module g721dec
@codes = global i32 x 1400  ; input
@params = global i32 x 1  ; input
@audio = global i32 x 1400  ; output
@idx_tab = global i32 x 16 {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}
@step_tab = global i32 x 89 {7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767}

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  br label %for.cond
for.cond:
  %i.21 = phi i32 [i32 0, %entry], [%v62, %for.step]
  %index.19 = phi i32 [i32 0, %entry], [%index.18, %for.step]
  %valpred.15 = phi i32 [i32 0, %entry], [%valpred.14, %for.step]
  %v5 = icmp slt %i.21, %v2
  condbr %v5, label %for.body, label %for.end
for.body:
  %v7 = gep @codes, %i.21 x i32
  %v8 = load i32, %v7
  %v10 = gep @step_tab, %index.19 x i32
  %v11 = load i32, %v10
  %v13 = ashr i32 %v11, i32 3
  %v15 = and i32 %v8, i32 4
  %v16 = icmp ne %v15, i32 0
  condbr %v16, label %if.then, label %if.end
for.step:
  %v62 = add i32 %i.21, i32 1
  br label %for.cond
for.end:
  ret void
if.then:
  %v19 = add i32 %v13, %v11
  br label %if.end
if.end:
  %vpdiff.27 = phi i32 [%v13, %for.body], [%v19, %if.then]
  %v21 = and i32 %v8, i32 2
  %v22 = icmp ne %v21, i32 0
  condbr %v22, label %if.then.0, label %if.end.1
if.then.0:
  %v24 = ashr i32 %v11, i32 1
  %v26 = add i32 %vpdiff.27, %v24
  br label %if.end.1
if.end.1:
  %vpdiff.26 = phi i32 [%vpdiff.27, %if.end], [%v26, %if.then.0]
  %v28 = and i32 %v8, i32 1
  %v29 = icmp ne %v28, i32 0
  condbr %v29, label %if.then.2, label %if.end.3
if.then.2:
  %v31 = ashr i32 %v11, i32 2
  %v33 = add i32 %vpdiff.26, %v31
  br label %if.end.3
if.end.3:
  %vpdiff.24 = phi i32 [%vpdiff.26, %if.end.1], [%v33, %if.then.2]
  %v35 = and i32 %v8, i32 8
  %v36 = icmp ne %v35, i32 0
  condbr %v36, label %if.then.4, label %if.else
if.then.4:
  %v39 = sub i32 %valpred.15, %vpdiff.24
  br label %if.end.5
if.else:
  %v42 = add i32 %valpred.15, %vpdiff.24
  br label %if.end.5
if.end.5:
  %valpred.17 = phi i32 [%v42, %if.else], [%v39, %if.then.4]
  %v44 = icmp sgt %valpred.17, i32 32767
  condbr %v44, label %if.then.6, label %if.end.7
if.then.6:
  br label %if.end.7
if.end.7:
  %valpred.16 = phi i32 [%valpred.17, %if.end.5], [i32 32767, %if.then.6]
  %v46 = sub i32 i32 0, i32 32768
  %v47 = icmp slt %valpred.16, %v46
  condbr %v47, label %if.then.8, label %if.end.9
if.then.8:
  %v48 = sub i32 i32 0, i32 32768
  br label %if.end.9
if.end.9:
  %valpred.14 = phi i32 [%valpred.16, %if.end.7], [%v48, %if.then.8]
  %v50 = gep @idx_tab, %v8 x i32
  %v51 = load i32, %v50
  %v53 = add i32 %index.19, %v51
  %v55 = icmp slt %v53, i32 0
  condbr %v55, label %if.then.10, label %if.end.11
if.then.10:
  br label %if.end.11
if.end.11:
  %index.20 = phi i32 [%v53, %if.end.9], [i32 0, %if.then.10]
  %v57 = icmp sgt %index.20, i32 88
  condbr %v57, label %if.then.12, label %if.end.13
if.then.12:
  br label %if.end.13
if.end.13:
  %index.18 = phi i32 [%index.20, %if.end.11], [i32 88, %if.then.12]
  %v59 = gep @audio, %i.21 x i32
  store %valpred.14, %v59
  br label %for.step
}
