; module mp3enc
@audio = global i32 x 324  ; input
@params = global i32 x 1  ; input
@coefq = global i32 x 312  ; output
@sfdelta = global i32 x 26  ; output
@spec = global f64 x 12
@costab = global f64 x 288
@wintab = global f64 x 24

define void @init_tabs() {
entry:
  br label %for.cond
for.cond:
  %n.8 = phi i32 [i32 0, %entry], [%v13, %for.step]
  %v2 = icmp slt %n.8, i32 24
  condbr %v2, label %for.body, label %for.end
for.body:
  %v4 = gep @wintab, %n.8 x f64
  %v6 = sitofp %n.8 to f64
  %v7 = fadd f64 %v6, f64 0.5
  %v8 = fmul f64 f64 3.141592653589793, %v7
  %v9 = sitofp i32 24 to f64
  %v10 = fdiv f64 %v8, %v9
  %v11 = sin(%v10)
  store %v11, %v4
  br label %for.step
for.step:
  %v13 = add i32 %n.8, i32 1
  br label %for.cond
for.end:
  br label %for.cond.0
for.cond.0:
  %k.9 = phi i32 [i32 0, %for.end], [%v40, %for.step.2]
  %v15 = icmp slt %k.9, i32 12
  condbr %v15, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v40 = add i32 %k.9, i32 1
  br label %for.cond.0
for.end.3:
  ret void
for.cond.4:
  %n.10 = phi i32 [i32 0, %for.body.1], [%v38, %for.step.6]
  %v17 = icmp slt %n.10, i32 24
  condbr %v17, label %for.body.5, label %for.end.7
for.body.5:
  %v19 = mul i32 %k.9, i32 24
  %v21 = add i32 %v19, %n.10
  %v22 = gep @costab, %v21 x f64
  %v23 = sitofp i32 12 to f64
  %v24 = fdiv f64 f64 3.141592653589793, %v23
  %v26 = sitofp %n.10 to f64
  %v27 = fadd f64 %v26, f64 0.5
  %v28 = sitofp i32 12 to f64
  %v29 = fdiv f64 %v28, f64 2.0
  %v30 = fadd f64 %v27, %v29
  %v31 = fmul f64 %v24, %v30
  %v33 = sitofp %k.9 to f64
  %v34 = fadd f64 %v33, f64 0.5
  %v35 = fmul f64 %v31, %v34
  %v36 = cos(%v35)
  store %v36, %v22
  br label %for.step.6
for.step.6:
  %v38 = add i32 %n.10, i32 1
  br label %for.cond.4
for.end.7:
  br label %for.step.2
}

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  call @init_tabs()
  br label %for.cond
for.cond:
  %f.13 = phi i32 [i32 0, %entry], [%v77, %for.step]
  %prev_sf.12 = phi i32 [i32 0, %entry], [%v47, %for.step]
  %v5 = icmp slt %f.13, %v2
  condbr %v5, label %for.body, label %for.end
for.body:
  %v7 = mul i32 %f.13, i32 12
  br label %for.cond.0
for.step:
  %v77 = add i32 %f.13, i32 1
  br label %for.cond
for.end:
  ret void
for.cond.0:
  %k.18 = phi i32 [i32 0, %for.body], [%v43, %for.step.2]
  %peak.16 = phi f64 [f64 1.0, %for.body], [%peak.15, %for.step.2]
  %v9 = icmp slt %k.18, i32 12
  condbr %v9, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v43 = add i32 %k.18, i32 1
  br label %for.cond.0
for.end.3:
  %v45 = fdiv f64 %peak.16, f64 127.0
  %v46 = fptosi %v45 to i32
  %v47 = add i32 %v46, i32 1
  %v49 = gep @sfdelta, %f.13 x i32
  %v52 = sub i32 %v47, %prev_sf.12
  store %v52, %v49
  br label %for.cond.8
for.cond.4:
  %n.23 = phi i32 [i32 0, %for.body.1], [%v32, %for.step.6]
  %s.20 = phi f64 [f64 0.0, %for.body.1], [%v30, %for.step.6]
  %v11 = icmp slt %n.23, i32 24
  condbr %v11, label %for.body.5, label %for.end.7
for.body.5:
  %v14 = add i32 %v7, %n.23
  %v15 = gep @audio, %v14 x i32
  %v16 = load i32, %v15
  %v17 = sitofp %v16 to f64
  %v19 = gep @wintab, %n.23 x f64
  %v20 = load f64, %v19
  %v21 = fmul f64 %v17, %v20
  %v23 = mul i32 %k.18, i32 24
  %v25 = add i32 %v23, %n.23
  %v26 = gep @costab, %v25 x f64
  %v27 = load f64, %v26
  %v28 = fmul f64 %v21, %v27
  %v30 = fadd f64 %s.20, %v28
  br label %for.step.6
for.step.6:
  %v32 = add i32 %n.23, i32 1
  br label %for.cond.4
for.end.7:
  %v34 = gep @spec, %k.18 x f64
  store %s.20, %v34
  %v37 = fabs(%s.20)
  %v40 = fcmp ogt %v37, %peak.16
  condbr %v40, label %if.then, label %if.end
if.then:
  br label %if.end
if.end:
  %peak.15 = phi f64 [%peak.16, %for.end.7], [%v37, %if.then]
  br label %for.step.2
for.cond.8:
  %k.27 = phi i32 [i32 0, %for.end.3], [%v75, %for.step.10]
  %v55 = icmp slt %k.27, i32 12
  condbr %v55, label %for.body.9, label %for.end.11
for.body.9:
  %v57 = gep @spec, %k.27 x f64
  %v58 = load f64, %v57
  %v60 = sitofp %v47 to f64
  %v61 = fdiv f64 %v58, %v60
  %v63 = mul i32 %f.13, i32 12
  %v65 = add i32 %v63, %k.27
  %v66 = gep @coefq, %v65 x i32
  %v69 = fcmp olt %v61, f64 0.0
  condbr %v69, label %sel.then, label %sel.else
for.step.10:
  %v75 = add i32 %k.27, i32 1
  br label %for.cond.8
for.end.11:
  br label %for.step
sel.then:
  %v70 = fsub f64 f64 0.0, f64 0.5
  br label %sel.end
sel.else:
  br label %sel.end
sel.end:
  %v71 = phi f64 [%v70, %sel.then], [f64 0.5, %sel.else]
  %v72 = fadd f64 %v61, %v71
  %v73 = fptosi %v72 to i32
  store %v73, %v66
  br label %for.step.10
}
