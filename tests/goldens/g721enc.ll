; module g721enc
@audio = global i32 x 1400  ; input
@params = global i32 x 1  ; input
@codes = global i32 x 1400  ; output
@idx_tab = global i32 x 16 {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}
@step_tab = global i32 x 89 {7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767}

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  br label %for.cond
for.cond:
  %i.23 = phi i32 [i32 0, %entry], [%v83, %for.step]
  %index.21 = phi i32 [i32 0, %entry], [%index.20, %for.step]
  %valpred.17 = phi i32 [i32 0, %entry], [%valpred.16, %for.step]
  %v5 = icmp slt %i.23, %v2
  condbr %v5, label %for.body, label %for.end
for.body:
  %v7 = gep @audio, %i.23 x i32
  %v8 = load i32, %v7
  %v11 = sub i32 %v8, %valpred.17
  %v13 = icmp slt %v11, i32 0
  condbr %v13, label %if.then, label %if.end
for.step:
  %v83 = add i32 %i.23, i32 1
  br label %for.cond
for.end:
  ret void
if.then:
  %v15 = sub i32 i32 0, %v11
  br label %if.end
if.end:
  %sign.29 = phi i32 [i32 0, %for.body], [i32 8, %if.then]
  %diff.28 = phi i32 [%v11, %for.body], [%v15, %if.then]
  %v17 = gep @step_tab, %index.21 x i32
  %v18 = load i32, %v17
  %v20 = ashr i32 %v18, i32 3
  %v23 = icmp sge %diff.28, %v18
  condbr %v23, label %if.then.0, label %if.end.1
if.then.0:
  %v26 = sub i32 %diff.28, %v18
  %v29 = add i32 %v20, %v18
  br label %if.end.1
if.end.1:
  %vpdiff.39 = phi i32 [%v20, %if.end], [%v29, %if.then.0]
  %delta.35 = phi i32 [i32 0, %if.end], [i32 4, %if.then.0]
  %diff.27 = phi i32 [%diff.28, %if.end], [%v26, %if.then.0]
  %v31 = ashr i32 %v18, i32 1
  %v34 = icmp sge %diff.27, %v31
  condbr %v34, label %if.then.2, label %if.end.3
if.then.2:
  %v36 = or i32 %delta.35, i32 2
  %v39 = sub i32 %diff.27, %v31
  %v42 = add i32 %vpdiff.39, %v31
  br label %if.end.3
if.end.3:
  %vpdiff.38 = phi i32 [%vpdiff.39, %if.end.1], [%v42, %if.then.2]
  %delta.34 = phi i32 [%delta.35, %if.end.1], [%v36, %if.then.2]
  %diff.25 = phi i32 [%diff.27, %if.end.1], [%v39, %if.then.2]
  %v44 = ashr i32 %v31, i32 1
  %v47 = icmp sge %diff.25, %v44
  condbr %v47, label %if.then.4, label %if.end.5
if.then.4:
  %v49 = or i32 %delta.34, i32 1
  %v52 = add i32 %vpdiff.38, %v44
  br label %if.end.5
if.end.5:
  %vpdiff.36 = phi i32 [%vpdiff.38, %if.end.3], [%v52, %if.then.4]
  %delta.33 = phi i32 [%delta.34, %if.end.3], [%v49, %if.then.4]
  %v54 = icmp ne %sign.29, i32 0
  condbr %v54, label %if.then.6, label %if.else
if.then.6:
  %v57 = sub i32 %valpred.17, %vpdiff.36
  br label %if.end.7
if.else:
  %v60 = add i32 %valpred.17, %vpdiff.36
  br label %if.end.7
if.end.7:
  %valpred.19 = phi i32 [%v60, %if.else], [%v57, %if.then.6]
  %v62 = icmp sgt %valpred.19, i32 32767
  condbr %v62, label %if.then.8, label %if.end.9
if.then.8:
  br label %if.end.9
if.end.9:
  %valpred.18 = phi i32 [%valpred.19, %if.end.7], [i32 32767, %if.then.8]
  %v64 = sub i32 i32 0, i32 32768
  %v65 = icmp slt %valpred.18, %v64
  condbr %v65, label %if.then.10, label %if.end.11
if.then.10:
  %v66 = sub i32 i32 0, i32 32768
  br label %if.end.11
if.end.11:
  %valpred.16 = phi i32 [%valpred.18, %if.end.9], [%v66, %if.then.10]
  %v69 = or i32 %delta.33, %sign.29
  %v71 = gep @idx_tab, %v69 x i32
  %v72 = load i32, %v71
  %v74 = add i32 %index.21, %v72
  %v76 = icmp slt %v74, i32 0
  condbr %v76, label %if.then.12, label %if.end.13
if.then.12:
  br label %if.end.13
if.end.13:
  %index.22 = phi i32 [%v74, %if.end.11], [i32 0, %if.then.12]
  %v78 = icmp sgt %index.22, i32 88
  condbr %v78, label %if.then.14, label %if.end.15
if.then.14:
  br label %if.end.15
if.end.15:
  %index.20 = phi i32 [%index.22, %if.end.13], [i32 88, %if.then.14]
  %v80 = gep @codes, %i.23 x i32
  store %v69, %v80
  br label %for.step
}
