; module tex_synth
@sample = global i32 x 81  ; input
@seedrow = global i32 x 9  ; input
@params = global i32 x 1  ; input
@out = global i32 x 81  ; output

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  br label %for.cond
for.cond:
  %x.18 = phi i32 [i32 0, %entry], [%v12, %for.step]
  %v5 = icmp slt %x.18, %v2
  condbr %v5, label %for.body, label %for.end
for.body:
  %v7 = gep @out, %x.18 x i32
  %v9 = gep @seedrow, %x.18 x i32
  %v10 = load i32, %v9
  store %v10, %v7
  br label %for.step
for.step:
  %v12 = add i32 %x.18, i32 1
  br label %for.cond
for.end:
  br label %for.cond.0
for.cond.0:
  %y.19 = phi i32 [i32 1, %for.end], [%v115, %for.step.2]
  %v15 = icmp slt %y.19, %v2
  condbr %v15, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v115 = add i32 %y.19, i32 1
  br label %for.cond.0
for.end.3:
  ret void
for.cond.4:
  %x.20 = phi i32 [i32 0, %for.body.1], [%v113, %for.step.6]
  %v18 = icmp slt %x.20, %v2
  condbr %v18, label %for.body.5, label %for.end.7
for.body.5:
  %v19 = shl i32 i32 1, i32 28
  br label %for.cond.8
for.step.6:
  %v113 = add i32 %x.20, i32 1
  br label %for.cond.4
for.end.7:
  br label %for.step.2
for.cond.8:
  %sy.32 = phi i32 [i32 1, %for.body.5], [%v104, %for.step.10]
  %bestssd.29 = phi i32 [%v19, %for.body.5], [%bestssd.28, %for.step.10]
  %bestval.24 = phi i32 [i32 0, %for.body.5], [%bestval.23, %for.step.10]
  %v21 = icmp slt %sy.32, i32 9
  condbr %v21, label %for.body.9, label %for.end.11
for.body.9:
  br label %for.cond.12
for.step.10:
  %v104 = add i32 %sy.32, i32 1
  br label %for.cond.8
for.end.11:
  %v107 = mul i32 %y.19, %v2
  %v109 = add i32 %v107, %x.20
  %v110 = gep @out, %v109 x i32
  store %bestval.24, %v110
  br label %for.step.6
for.cond.12:
  %sx.35 = phi i32 [i32 1, %for.body.9], [%v102, %for.step.14]
  %bestssd.28 = phi i32 [%bestssd.29, %for.body.9], [%bestssd.27, %for.step.14]
  %bestval.23 = phi i32 [%bestval.24, %for.body.9], [%bestval.22, %for.step.14]
  %v23 = icmp slt %sx.35, i32 9
  condbr %v23, label %for.body.13, label %for.end.15
for.body.13:
  %v25 = sub i32 %y.19, i32 1
  %v27 = mul i32 %v25, %v2
  %v29 = add i32 %v27, %x.20
  %v30 = gep @out, %v29 x i32
  %v31 = load i32, %v30
  %v33 = sub i32 %sy.32, i32 1
  %v34 = mul i32 %v33, i32 9
  %v36 = add i32 %v34, %sx.35
  %v37 = gep @sample, %v36 x i32
  %v38 = load i32, %v37
  %v39 = sub i32 %v31, %v38
  %v42 = mul i32 %v39, %v39
  %v44 = add i32 i32 0, %v42
  %v46 = icmp sgt %x.20, i32 0
  condbr %v46, label %if.then, label %if.end
for.step.14:
  %v102 = add i32 %sx.35, i32 1
  br label %for.cond.12
for.end.15:
  br label %for.step.10
if.then:
  %v49 = mul i32 %y.19, %v2
  %v51 = add i32 %v49, %x.20
  %v52 = sub i32 %v51, i32 1
  %v53 = gep @out, %v52 x i32
  %v54 = load i32, %v53
  %v56 = mul i32 %sy.32, i32 9
  %v58 = add i32 %v56, %sx.35
  %v59 = sub i32 %v58, i32 1
  %v60 = gep @sample, %v59 x i32
  %v61 = load i32, %v60
  %v62 = sub i32 %v54, %v61
  %v65 = mul i32 %v62, %v62
  %v67 = add i32 %v44, %v65
  %v69 = sub i32 %y.19, i32 1
  %v71 = mul i32 %v69, %v2
  %v73 = add i32 %v71, %x.20
  %v74 = sub i32 %v73, i32 1
  %v75 = gep @out, %v74 x i32
  %v76 = load i32, %v75
  %v78 = sub i32 %sy.32, i32 1
  %v79 = mul i32 %v78, i32 9
  %v81 = add i32 %v79, %sx.35
  %v82 = sub i32 %v81, i32 1
  %v83 = gep @sample, %v82 x i32
  %v84 = load i32, %v83
  %v85 = sub i32 %v76, %v84
  %v88 = mul i32 %v85, %v85
  %v90 = add i32 %v67, %v88
  br label %if.end
if.end:
  %ssd.39 = phi i32 [%v44, %for.body.13], [%v90, %if.then]
  %v93 = icmp slt %ssd.39, %bestssd.28
  condbr %v93, label %if.then.16, label %if.end.17
if.then.16:
  %v96 = mul i32 %sy.32, i32 9
  %v98 = add i32 %v96, %sx.35
  %v99 = gep @sample, %v98 x i32
  %v100 = load i32, %v99
  br label %if.end.17
if.end.17:
  %bestssd.27 = phi i32 [%bestssd.28, %if.end], [%ssd.39, %if.then.16]
  %bestval.22 = phi i32 [%bestval.23, %if.end], [%v100, %if.then.16]
  br label %for.step.14
}
