; module jpegenc
@image = global i32 x 576  ; input
@params = global i32 x 2  ; input
@stream = global i32 x 1186  ; output
@stream_len = global i32 x 1  ; output
@blk = global f64 x 64
@tmpb = global f64 x 64
@coef = global i32 x 64
@zz = global i32 x 64 {0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63}
@qtab = global i32 x 64 {16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56, 14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113, 92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99}
@ctab = global f64 x 64

define void @init_ctab() {
entry:
  br label %for.cond
for.cond:
  %u.4 = phi i32 [i32 0, %entry], [%v27, %for.step]
  %v2 = icmp slt %u.4, i32 8
  condbr %v2, label %for.body, label %for.end
for.body:
  %v4 = icmp sgt %u.4, i32 0
  condbr %v4, label %if.then, label %if.end
for.step:
  %v27 = add i32 %u.4, i32 1
  br label %for.cond
for.end:
  ret void
if.then:
  br label %if.end
if.end:
  %su.5 = phi f64 [f64 0.3535533905932738, %for.body], [f64 0.5, %if.then]
  br label %for.cond.0
for.cond.0:
  %x.7 = phi i32 [i32 0, %if.end], [%v25, %for.step.2]
  %v6 = icmp slt %x.7, i32 8
  condbr %v6, label %for.body.1, label %for.end.3
for.body.1:
  %v8 = mul i32 %u.4, i32 8
  %v10 = add i32 %v8, %x.7
  %v11 = gep @ctab, %v10 x f64
  %v14 = sitofp %x.7 to f64
  %v15 = fmul f64 f64 2.0, %v14
  %v16 = fadd f64 %v15, f64 1.0
  %v18 = sitofp %u.4 to f64
  %v19 = fmul f64 %v16, %v18
  %v20 = fmul f64 %v19, f64 3.141592653589793
  %v21 = fdiv f64 %v20, f64 16.0
  %v22 = cos(%v21)
  %v23 = fmul f64 %su.5, %v22
  store %v23, %v11
  br label %for.step.2
for.step.2:
  %v25 = add i32 %x.7, i32 1
  br label %for.cond.0
for.end.3:
  br label %for.step
}

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  %v3 = gep @params, i32 1 x i32
  %v4 = load i32, %v3
  call @init_ctab()
  br label %for.cond
for.cond:
  %by.44 = phi i32 [i32 0, %entry], [%v152, %for.step]
  %pos.41 = phi i32 [i32 0, %entry], [%pos.40, %for.step]
  %v7 = icmp slt %by.44, %v4
  condbr %v7, label %for.body, label %for.end
for.body:
  br label %for.cond.0
for.step:
  %v152 = add i32 %by.44, i32 8
  br label %for.cond
for.end:
  %v153 = gep @stream_len, i32 0 x i32
  store %pos.41, %v153
  ret void
for.cond.0:
  %bx.45 = phi i32 [i32 0, %for.body], [%v150, %for.step.2]
  %pos.40 = phi i32 [%pos.41, %for.body], [%v148, %for.step.2]
  %v10 = icmp slt %bx.45, %v2
  condbr %v10, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v150 = add i32 %bx.45, i32 8
  br label %for.cond.0
for.end.3:
  br label %for.step
for.cond.4:
  %y.47 = phi i32 [i32 0, %for.body.1], [%v36, %for.step.6]
  %v12 = icmp slt %y.47, i32 8
  condbr %v12, label %for.body.5, label %for.end.7
for.body.5:
  br label %for.cond.8
for.step.6:
  %v36 = add i32 %y.47, i32 1
  br label %for.cond.4
for.end.7:
  br label %for.cond.12
for.cond.8:
  %x.50 = phi i32 [i32 0, %for.body.5], [%v34, %for.step.10]
  %v14 = icmp slt %x.50, i32 8
  condbr %v14, label %for.body.9, label %for.end.11
for.body.9:
  %v16 = mul i32 %y.47, i32 8
  %v18 = add i32 %v16, %x.50
  %v19 = gep @blk, %v18 x f64
  %v22 = add i32 %by.44, %y.47
  %v24 = mul i32 %v22, %v2
  %v26 = add i32 %v24, %bx.45
  %v28 = add i32 %v26, %x.50
  %v29 = gep @image, %v28 x i32
  %v30 = load i32, %v29
  %v31 = sub i32 %v30, i32 128
  %v32 = sitofp %v31 to f64
  store %v32, %v19
  br label %for.step.10
for.step.10:
  %v34 = add i32 %x.50, i32 1
  br label %for.cond.8
for.end.11:
  br label %for.step.6
for.cond.12:
  %y.54 = phi i32 [i32 0, %for.end.7], [%v69, %for.step.14]
  %v38 = icmp slt %y.54, i32 8
  condbr %v38, label %for.body.13, label %for.end.15
for.body.13:
  br label %for.cond.16
for.step.14:
  %v69 = add i32 %y.54, i32 1
  br label %for.cond.12
for.end.15:
  br label %for.cond.24
for.cond.16:
  %u.57 = phi i32 [i32 0, %for.body.13], [%v67, %for.step.18]
  %v40 = icmp slt %u.57, i32 8
  condbr %v40, label %for.body.17, label %for.end.19
for.body.17:
  br label %for.cond.20
for.step.18:
  %v67 = add i32 %u.57, i32 1
  br label %for.cond.16
for.end.19:
  br label %for.step.14
for.cond.20:
  %x.69 = phi i32 [i32 0, %for.body.17], [%v59, %for.step.22]
  %s.64 = phi f64 [f64 0.0, %for.body.17], [%v57, %for.step.22]
  %v42 = icmp slt %x.69, i32 8
  condbr %v42, label %for.body.21, label %for.end.23
for.body.21:
  %v44 = mul i32 %y.54, i32 8
  %v46 = add i32 %v44, %x.69
  %v47 = gep @blk, %v46 x f64
  %v48 = load f64, %v47
  %v50 = mul i32 %u.57, i32 8
  %v52 = add i32 %v50, %x.69
  %v53 = gep @ctab, %v52 x f64
  %v54 = load f64, %v53
  %v55 = fmul f64 %v48, %v54
  %v57 = fadd f64 %s.64, %v55
  br label %for.step.22
for.step.22:
  %v59 = add i32 %x.69, i32 1
  br label %for.cond.20
for.end.23:
  %v61 = mul i32 %y.54, i32 8
  %v63 = add i32 %v61, %u.57
  %v64 = gep @tmpb, %v63 x f64
  store %s.64, %v64
  br label %for.step.18
for.cond.24:
  %v.61 = phi i32 [i32 0, %for.end.15], [%v117, %for.step.26]
  %v71 = icmp slt %v.61, i32 8
  condbr %v71, label %for.body.25, label %for.end.27
for.body.25:
  br label %for.cond.28
for.step.26:
  %v117 = add i32 %v.61, i32 1
  br label %for.cond.24
for.end.27:
  br label %for.cond.36
for.cond.28:
  %u.74 = phi i32 [i32 0, %for.body.25], [%v115, %for.step.30]
  %v73 = icmp slt %u.74, i32 8
  condbr %v73, label %for.body.29, label %for.end.31
for.body.29:
  br label %for.cond.32
for.step.30:
  %v115 = add i32 %u.74, i32 1
  br label %for.cond.28
for.end.31:
  br label %for.step.26
for.cond.32:
  %y.90 = phi i32 [i32 0, %for.body.29], [%v92, %for.step.34]
  %s.85 = phi f64 [f64 0.0, %for.body.29], [%v90, %for.step.34]
  %v75 = icmp slt %y.90, i32 8
  condbr %v75, label %for.body.33, label %for.end.35
for.body.33:
  %v77 = mul i32 %y.90, i32 8
  %v79 = add i32 %v77, %u.74
  %v80 = gep @tmpb, %v79 x f64
  %v81 = load f64, %v80
  %v83 = mul i32 %v.61, i32 8
  %v85 = add i32 %v83, %y.90
  %v86 = gep @ctab, %v85 x f64
  %v87 = load f64, %v86
  %v88 = fmul f64 %v81, %v87
  %v90 = fadd f64 %s.85, %v88
  br label %for.step.34
for.step.34:
  %v92 = add i32 %y.90, i32 1
  br label %for.cond.32
for.end.35:
  %v95 = mul i32 %v.61, i32 8
  %v97 = add i32 %v95, %u.74
  %v98 = gep @qtab, %v97 x i32
  %v99 = load i32, %v98
  %v100 = sitofp %v99 to f64
  %v101 = fdiv f64 %s.85, %v100
  %v103 = mul i32 %v.61, i32 8
  %v105 = add i32 %v103, %u.74
  %v106 = gep @coef, %v105 x i32
  %v109 = fcmp olt %v101, f64 0.0
  condbr %v109, label %sel.then, label %sel.else
sel.then:
  %v110 = fsub f64 f64 0.0, f64 0.5
  br label %sel.end
sel.else:
  br label %sel.end
sel.end:
  %v111 = phi f64 [%v110, %sel.then], [f64 0.5, %sel.else]
  %v112 = fadd f64 %v101, %v111
  %v113 = fptosi %v112 to i32
  store %v113, %v106
  br label %for.step.30
for.cond.36:
  %i.82 = phi i32 [i32 0, %for.end.27], [%v139, %for.step.38]
  %run.79 = phi i32 [i32 0, %for.end.27], [%run.78, %for.step.38]
  %pos.43 = phi i32 [%pos.40, %for.end.27], [%pos.42, %for.step.38]
  %v119 = icmp slt %i.82, i32 64
  condbr %v119, label %for.body.37, label %for.end.39
for.body.37:
  %v121 = gep @zz, %i.82 x i32
  %v122 = load i32, %v121
  %v123 = gep @coef, %v122 x i32
  %v124 = load i32, %v123
  %v126 = icmp eq %v124, i32 0
  condbr %v126, label %if.then, label %if.else
for.step.38:
  %v139 = add i32 %i.82, i32 1
  br label %for.cond.36
for.end.39:
  %v141 = gep @stream, %pos.43 x i32
  %v142 = sub i32 i32 0, i32 999
  store %v142, %v141
  %v144 = add i32 %pos.43, i32 1
  %v145 = gep @stream, %v144 x i32
  store %run.79, %v145
  %v148 = add i32 %pos.43, i32 2
  br label %for.step.2
if.then:
  %v128 = add i32 %run.79, i32 1
  br label %if.end
if.else:
  %v130 = gep @stream, %pos.43 x i32
  store %run.79, %v130
  %v133 = add i32 %pos.43, i32 1
  %v134 = gep @stream, %v133 x i32
  store %v124, %v134
  %v137 = add i32 %pos.43, i32 2
  br label %if.end
if.end:
  %run.78 = phi i32 [i32 0, %if.else], [%v128, %if.then]
  %pos.42 = phi i32 [%v137, %if.else], [%pos.43, %if.then]
  br label %for.step.38
}
