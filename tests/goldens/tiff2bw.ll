; module tiff2bw
@rgb = global i32 x 2028  ; input
@params = global i32 x 2  ; input
@bw = global i32 x 676  ; output
@lum = global i32 x 676

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  %v3 = gep @params, i32 1 x i32
  %v4 = load i32, %v3
  %v7 = mul i32 %v2, %v4
  br label %for.cond
for.cond:
  %i.16 = phi i32 [i32 0, %entry], [%v46, %for.step]
  %hi.15 = phi i32 [i32 0, %entry], [%hi.14, %for.step]
  %lo.13 = phi i32 [i32 255, %entry], [%lo.12, %for.step]
  %v10 = icmp slt %i.16, %v7
  condbr %v10, label %for.body, label %for.end
for.body:
  %v12 = mul i32 %i.16, i32 3
  %v13 = gep @rgb, %v12 x i32
  %v14 = load i32, %v13
  %v16 = mul i32 %i.16, i32 3
  %v17 = add i32 %v16, i32 1
  %v18 = gep @rgb, %v17 x i32
  %v19 = load i32, %v18
  %v21 = mul i32 %i.16, i32 3
  %v22 = add i32 %v21, i32 2
  %v23 = gep @rgb, %v22 x i32
  %v24 = load i32, %v23
  %v26 = mul i32 %v14, i32 77
  %v28 = mul i32 %v19, i32 151
  %v29 = add i32 %v26, %v28
  %v31 = mul i32 %v24, i32 28
  %v32 = add i32 %v29, %v31
  %v33 = ashr i32 %v32, i32 8
  %v35 = gep @lum, %i.16 x i32
  store %v33, %v35
  %v39 = icmp slt %v33, %lo.13
  condbr %v39, label %if.then, label %if.end
for.step:
  %v46 = add i32 %i.16, i32 1
  br label %for.cond
for.end:
  %v49 = sub i32 %hi.15, %lo.13
  %v51 = icmp slt %v49, i32 1
  condbr %v51, label %if.then.2, label %if.end.3
if.then:
  br label %if.end
if.end:
  %lo.12 = phi i32 [%lo.13, %for.body], [%v33, %if.then]
  %v43 = icmp sgt %v33, %hi.15
  condbr %v43, label %if.then.0, label %if.end.1
if.then.0:
  br label %if.end.1
if.end.1:
  %hi.14 = phi i32 [%hi.15, %if.end], [%v33, %if.then.0]
  br label %for.step
if.then.2:
  br label %if.end.3
if.end.3:
  %span.21 = phi i32 [%v49, %for.end], [i32 1, %if.then.2]
  br label %for.cond.4
for.cond.4:
  %i.22 = phi i32 [i32 0, %if.end.3], [%v71, %for.step.6]
  %v54 = icmp slt %i.22, %v7
  condbr %v54, label %for.body.5, label %for.end.7
for.body.5:
  %v56 = gep @lum, %i.22 x i32
  %v57 = load i32, %v56
  %v59 = sub i32 %v57, %lo.13
  %v60 = mul i32 %v59, i32 255
  %v62 = sdiv i32 %v60, %span.21
  %v64 = icmp slt %v62, i32 0
  condbr %v64, label %if.then.8, label %if.end.9
for.step.6:
  %v71 = add i32 %i.22, i32 1
  br label %for.cond.4
for.end.7:
  ret void
if.then.8:
  br label %if.end.9
if.end.9:
  %v.25 = phi i32 [%v62, %for.body.5], [i32 0, %if.then.8]
  %v66 = icmp sgt %v.25, i32 255
  condbr %v66, label %if.then.10, label %if.end.11
if.then.10:
  br label %if.end.11
if.end.11:
  %v.23 = phi i32 [%v.25, %if.end.9], [i32 255, %if.then.10]
  %v68 = gep @bw, %i.22 x i32
  store %v.23, %v68
  br label %for.step.6
}
