; module svm
@testx = global i32 x 288  ; input
@svx = global i32 x 120  ; input
@alpha = global i32 x 20  ; input
@params = global i32 x 1  ; input
@labels = global i32 x 48  ; output

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  br label %for.cond
for.cond:
  %i.8 = phi i32 [i32 0, %entry], [%v54, %for.step]
  %v5 = icmp slt %i.8, %v2
  condbr %v5, label %for.body, label %for.end
for.body:
  br label %for.cond.0
for.step:
  %v54 = add i32 %i.8, i32 1
  br label %for.cond
for.end:
  ret void
for.cond.0:
  %s.11 = phi i32 [i32 0, %for.body], [%v45, %for.step.2]
  %score.9 = phi f64 [f64 0.0, %for.body], [%v43, %for.step.2]
  %v7 = icmp slt %s.11, i32 20
  condbr %v7, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v45 = add i32 %s.11, i32 1
  br label %for.cond.0
for.end.3:
  %v47 = fcmp oge %score.9, f64 0.0
  condbr %v47, label %if.then, label %if.else
for.cond.4:
  %d.16 = phi i32 [i32 0, %for.body.1], [%v30, %for.step.6]
  %dist2.13 = phi f64 [f64 0.0, %for.body.1], [%v28, %for.step.6]
  %v9 = icmp slt %d.16, i32 6
  condbr %v9, label %for.body.5, label %for.end.7
for.body.5:
  %v11 = mul i32 %i.8, i32 6
  %v13 = add i32 %v11, %d.16
  %v14 = gep @testx, %v13 x i32
  %v15 = load i32, %v14
  %v17 = mul i32 %s.11, i32 6
  %v19 = add i32 %v17, %d.16
  %v20 = gep @svx, %v19 x i32
  %v21 = load i32, %v20
  %v22 = sub i32 %v15, %v21
  %v23 = sitofp %v22 to f64
  %v26 = fmul f64 %v23, %v23
  %v28 = fadd f64 %dist2.13, %v26
  br label %for.step.6
for.step.6:
  %v30 = add i32 %d.16, i32 1
  br label %for.cond.4
for.end.7:
  %v32 = fmul f64 f64 1.54320987654321e-05, %dist2.13
  %v33 = fsub f64 f64 0.0, %v32
  %v34 = exp(%v33)
  %v36 = gep @alpha, %s.11 x i32
  %v37 = load i32, %v36
  %v38 = sitofp %v37 to f64
  %v39 = fmul f64 %v38, f64 0.001
  %v41 = fmul f64 %v39, %v34
  %v43 = fadd f64 %score.9, %v41
  br label %for.step.2
if.then:
  %v49 = gep @labels, %i.8 x i32
  store i32 1, %v49
  br label %if.end
if.else:
  %v51 = gep @labels, %i.8 x i32
  %v52 = sub i32 i32 0, i32 1
  store %v52, %v51
  br label %if.end
if.end:
  br label %for.step
}
