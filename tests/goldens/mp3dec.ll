; module mp3dec
@coefq = global i32 x 312  ; input
@sfdelta = global i32 x 26  ; input
@params = global i32 x 1  ; input
@audio = global i32 x 324  ; output
@synth = global f64 x 24
@overlap = global f64 x 24
@costab = global f64 x 288
@wintab = global f64 x 24

define void @init_tabs() {
entry:
  br label %for.cond
for.cond:
  %n.8 = phi i32 [i32 0, %entry], [%v13, %for.step]
  %v2 = icmp slt %n.8, i32 24
  condbr %v2, label %for.body, label %for.end
for.body:
  %v4 = gep @wintab, %n.8 x f64
  %v6 = sitofp %n.8 to f64
  %v7 = fadd f64 %v6, f64 0.5
  %v8 = fmul f64 f64 3.141592653589793, %v7
  %v9 = sitofp i32 24 to f64
  %v10 = fdiv f64 %v8, %v9
  %v11 = sin(%v10)
  store %v11, %v4
  br label %for.step
for.step:
  %v13 = add i32 %n.8, i32 1
  br label %for.cond
for.end:
  br label %for.cond.0
for.cond.0:
  %k.9 = phi i32 [i32 0, %for.end], [%v40, %for.step.2]
  %v15 = icmp slt %k.9, i32 12
  condbr %v15, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v40 = add i32 %k.9, i32 1
  br label %for.cond.0
for.end.3:
  ret void
for.cond.4:
  %n.10 = phi i32 [i32 0, %for.body.1], [%v38, %for.step.6]
  %v17 = icmp slt %n.10, i32 24
  condbr %v17, label %for.body.5, label %for.end.7
for.body.5:
  %v19 = mul i32 %k.9, i32 24
  %v21 = add i32 %v19, %n.10
  %v22 = gep @costab, %v21 x f64
  %v23 = sitofp i32 12 to f64
  %v24 = fdiv f64 f64 3.141592653589793, %v23
  %v26 = sitofp %n.10 to f64
  %v27 = fadd f64 %v26, f64 0.5
  %v28 = sitofp i32 12 to f64
  %v29 = fdiv f64 %v28, f64 2.0
  %v30 = fadd f64 %v27, %v29
  %v31 = fmul f64 %v24, %v30
  %v33 = sitofp %k.9 to f64
  %v34 = fadd f64 %v33, f64 0.5
  %v35 = fmul f64 %v31, %v34
  %v36 = cos(%v35)
  store %v36, %v22
  br label %for.step.6
for.step.6:
  %v38 = add i32 %n.10, i32 1
  br label %for.cond.4
for.end.7:
  br label %for.step.2
}

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  call @init_tabs()
  br label %for.cond
for.cond:
  %n.26 = phi i32 [i32 0, %entry], [%v8, %for.step]
  %v4 = icmp slt %n.26, i32 24
  condbr %v4, label %for.body, label %for.end
for.body:
  %v6 = gep @overlap, %n.26 x f64
  store f64 0.0, %v6
  br label %for.step
for.step:
  %v8 = add i32 %n.26, i32 1
  br label %for.cond
for.end:
  br label %for.cond.0
for.cond.0:
  %f.28 = phi i32 [i32 0, %for.end], [%v104, %for.step.2]
  %sf.27 = phi i32 [i32 0, %for.end], [%v16, %for.step.2]
  %v11 = icmp slt %f.28, %v2
  condbr %v11, label %for.body.1, label %for.end.3
for.body.1:
  %v13 = gep @sfdelta, %f.28 x i32
  %v14 = load i32, %v13
  %v16 = add i32 %sf.27, %v14
  %v18 = mul i32 %f.28, i32 12
  br label %for.cond.4
for.step.2:
  %v104 = add i32 %f.28, i32 1
  br label %for.cond.0
for.end.3:
  ret void
for.cond.4:
  %n.30 = phi i32 [i32 0, %for.body.1], [%v55, %for.step.6]
  %v20 = icmp slt %n.30, i32 24
  condbr %v20, label %for.body.5, label %for.end.7
for.body.5:
  br label %for.cond.8
for.step.6:
  %v55 = add i32 %n.30, i32 1
  br label %for.cond.4
for.end.7:
  br label %for.cond.12
for.cond.8:
  %k.35 = phi i32 [i32 0, %for.body.5], [%v43, %for.step.10]
  %s.32 = phi f64 [f64 0.0, %for.body.5], [%v41, %for.step.10]
  %v22 = icmp slt %k.35, i32 12
  condbr %v22, label %for.body.9, label %for.end.11
for.body.9:
  %v24 = mul i32 %f.28, i32 12
  %v26 = add i32 %v24, %k.35
  %v27 = gep @coefq, %v26 x i32
  %v28 = load i32, %v27
  %v29 = sitofp %v28 to f64
  %v31 = sitofp %v16 to f64
  %v32 = fmul f64 %v29, %v31
  %v34 = mul i32 %k.35, i32 24
  %v36 = add i32 %v34, %n.30
  %v37 = gep @costab, %v36 x f64
  %v38 = load f64, %v37
  %v39 = fmul f64 %v32, %v38
  %v41 = fadd f64 %s.32, %v39
  br label %for.step.10
for.step.10:
  %v43 = add i32 %k.35, i32 1
  br label %for.cond.8
for.end.11:
  %v45 = gep @synth, %n.30 x f64
  %v48 = gep @wintab, %n.30 x f64
  %v49 = load f64, %v48
  %v50 = fmul f64 %s.32, %v49
  %v51 = sitofp i32 12 to f64
  %v52 = fdiv f64 f64 2.0, %v51
  %v53 = fmul f64 %v50, %v52
  store %v53, %v45
  br label %for.step.6
for.cond.12:
  %n.38 = phi i32 [i32 0, %for.end.7], [%v84, %for.step.14]
  %v57 = icmp slt %n.38, i32 12
  condbr %v57, label %for.body.13, label %for.end.15
for.body.13:
  %v59 = gep @overlap, %n.38 x f64
  %v60 = load f64, %v59
  %v62 = gep @synth, %n.38 x f64
  %v63 = load f64, %v62
  %v64 = fadd f64 %v60, %v63
  %v67 = fcmp olt %v64, f64 0.0
  condbr %v67, label %sel.then, label %sel.else
for.step.14:
  %v84 = add i32 %n.38, i32 1
  br label %for.cond.12
for.end.15:
  br label %for.cond.18
sel.then:
  %v68 = fsub f64 f64 0.0, f64 0.5
  br label %sel.end
sel.else:
  br label %sel.end
sel.end:
  %v69 = phi f64 [%v68, %sel.then], [f64 0.5, %sel.else]
  %v70 = fadd f64 %v64, %v69
  %v71 = fptosi %v70 to i32
  %v73 = icmp sgt %v71, i32 32767
  condbr %v73, label %if.then, label %if.end
if.then:
  br label %if.end
if.end:
  %out.45 = phi i32 [%v71, %sel.end], [i32 32767, %if.then]
  %v75 = sub i32 i32 0, i32 32768
  %v76 = icmp slt %out.45, %v75
  condbr %v76, label %if.then.16, label %if.end.17
if.then.16:
  %v77 = sub i32 i32 0, i32 32768
  br label %if.end.17
if.end.17:
  %out.42 = phi i32 [%out.45, %if.end], [%v77, %if.then.16]
  %v80 = add i32 %v18, %n.38
  %v81 = gep @audio, %v80 x i32
  store %out.42, %v81
  br label %for.step.14
for.cond.18:
  %n.46 = phi i32 [i32 0, %for.end.15], [%v95, %for.step.20]
  %v86 = sub i32 i32 24, i32 12
  %v87 = icmp slt %n.46, %v86
  condbr %v87, label %for.body.19, label %for.end.21
for.body.19:
  %v89 = gep @overlap, %n.46 x f64
  %v91 = add i32 i32 12, %n.46
  %v92 = gep @synth, %v91 x f64
  %v93 = load f64, %v92
  store %v93, %v89
  br label %for.step.20
for.step.20:
  %v95 = add i32 %n.46, i32 1
  br label %for.cond.18
for.end.21:
  %v96 = sub i32 i32 24, i32 12
  br label %for.cond.22
for.cond.22:
  %n.48 = phi i32 [%v96, %for.end.21], [%v102, %for.step.24]
  %v98 = icmp slt %n.48, i32 24
  condbr %v98, label %for.body.23, label %for.end.25
for.body.23:
  %v100 = gep @overlap, %n.48 x f64
  store f64 0.0, %v100
  br label %for.step.24
for.step.24:
  %v102 = add i32 %n.48, i32 1
  br label %for.cond.22
for.end.25:
  br label %for.step.2
}
