; module h264enc
@video = global i32 x 1024  ; input
@params = global i32 x 1  ; input
@mvs = global i32 x 32  ; output
@resq = global i32 x 1024  ; output
@recon = global i32 x 1024

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  br label %for.cond
for.cond:
  %f.51 = phi i32 [i32 0, %entry], [%v191, %for.step]
  %bi.50 = phi i32 [i32 0, %entry], [%bi.49, %for.step]
  %v5 = icmp slt %f.51, %v2
  condbr %v5, label %for.body, label %for.end
for.body:
  %v7 = mul i32 %f.51, i32 16
  %v8 = mul i32 %v7, i32 16
  %v10 = sub i32 %f.51, i32 1
  %v11 = mul i32 %v10, i32 16
  %v12 = mul i32 %v11, i32 16
  br label %for.cond.0
for.step:
  %v191 = add i32 %f.51, i32 1
  br label %for.cond
for.end:
  ret void
for.cond.0:
  %by.54 = phi i32 [i32 0, %for.body], [%v189, %for.step.2]
  %bi.49 = phi i32 [%bi.50, %for.body], [%bi.48, %for.step.2]
  %v14 = icmp slt %by.54, i32 16
  condbr %v14, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v189 = add i32 %by.54, i32 8
  br label %for.cond.0
for.end.3:
  br label %for.step
for.cond.4:
  %bx.56 = phi i32 [i32 0, %for.body.1], [%v187, %for.step.6]
  %bi.48 = phi i32 [%bi.49, %for.body.1], [%v185, %for.step.6]
  %v16 = icmp slt %bx.56, i32 16
  condbr %v16, label %for.body.5, label %for.end.7
for.body.5:
  %v18 = icmp sgt %f.51, i32 0
  condbr %v18, label %if.then, label %if.end
for.step.6:
  %v187 = add i32 %bx.56, i32 8
  br label %for.cond.4
for.end.7:
  br label %for.step.2
if.then:
  %v19 = shl i32 i32 1, i32 28
  %v20 = sub i32 i32 0, i32 1
  br label %for.cond.8
if.end:
  %mvy.71 = phi i32 [i32 0, %for.body.5], [%mvy.70, %for.end.11]
  %mvx.63 = phi i32 [i32 0, %for.body.5], [%mvx.62, %for.end.11]
  %v97 = mul i32 %bi.48, i32 2
  %v98 = gep @mvs, %v97 x i32
  store %mvx.63, %v98
  %v101 = mul i32 %bi.48, i32 2
  %v102 = add i32 %v101, i32 1
  %v103 = gep @mvs, %v102 x i32
  store %mvy.71, %v103
  br label %for.cond.34
for.cond.8:
  %dy.83 = phi i32 [%v20, %if.then], [%v95, %for.step.10]
  %best.78 = phi i32 [%v19, %if.then], [%best.77, %for.step.10]
  %mvy.70 = phi i32 [i32 0, %if.then], [%mvy.69, %for.step.10]
  %mvx.62 = phi i32 [i32 0, %if.then], [%mvx.61, %for.step.10]
  %v22 = icmp sle %dy.83, i32 1
  condbr %v22, label %for.body.9, label %for.end.11
for.body.9:
  %v23 = sub i32 i32 0, i32 1
  br label %for.cond.12
for.step.10:
  %v95 = add i32 %dy.83, i32 1
  br label %for.cond.8
for.end.11:
  br label %if.end
for.cond.12:
  %dx.92 = phi i32 [%v23, %for.body.9], [%v93, %for.step.14]
  %best.77 = phi i32 [%best.78, %for.body.9], [%best.76, %for.step.14]
  %mvy.69 = phi i32 [%mvy.70, %for.body.9], [%mvy.68, %for.step.14]
  %mvx.61 = phi i32 [%mvx.62, %for.body.9], [%mvx.60, %for.step.14]
  %v25 = icmp sle %dx.92, i32 1
  condbr %v25, label %for.body.13, label %for.end.15
for.body.13:
  %v28 = add i32 %by.54, %dy.83
  %v29 = icmp slt %v28, i32 0
  condbr %v29, label %if.then.16, label %if.end.17
for.step.14:
  %best.76 = phi i32 [%best.75, %if.end.33], [%best.77, %if.then.22], [%best.77, %if.then.20], [%best.77, %if.then.18], [%best.77, %if.then.16]
  %mvy.68 = phi i32 [%mvy.67, %if.end.33], [%mvy.69, %if.then.22], [%mvy.69, %if.then.20], [%mvy.69, %if.then.18], [%mvy.69, %if.then.16]
  %mvx.60 = phi i32 [%mvx.59, %if.end.33], [%mvx.61, %if.then.22], [%mvx.61, %if.then.20], [%mvx.61, %if.then.18], [%mvx.61, %if.then.16]
  %v93 = add i32 %dx.92, i32 1
  br label %for.cond.12
for.end.15:
  br label %for.step.10
if.then.16:
  br label %for.step.14
if.end.17:
  %v32 = add i32 %bx.56, %dx.92
  %v33 = icmp slt %v32, i32 0
  condbr %v33, label %if.then.18, label %if.end.19
if.then.18:
  br label %for.step.14
if.end.19:
  %v36 = add i32 %by.54, %dy.83
  %v37 = add i32 %v36, i32 8
  %v38 = icmp sgt %v37, i32 16
  condbr %v38, label %if.then.20, label %if.end.21
if.then.20:
  br label %for.step.14
if.end.21:
  %v41 = add i32 %bx.56, %dx.92
  %v42 = add i32 %v41, i32 8
  %v43 = icmp sgt %v42, i32 16
  condbr %v43, label %if.then.22, label %if.end.23
if.then.22:
  br label %for.step.14
if.end.23:
  br label %for.cond.24
for.cond.24:
  %y.107 = phi i32 [i32 0, %if.end.23], [%v85, %for.step.26]
  %sad.99 = phi i32 [i32 0, %if.end.23], [%sad.98, %for.step.26]
  %v45 = icmp slt %y.107, i32 8
  condbr %v45, label %for.body.25, label %for.end.27
for.body.25:
  br label %for.cond.28
for.step.26:
  %v85 = add i32 %y.107, i32 1
  br label %for.cond.24
for.end.27:
  %v88 = icmp slt %sad.99, %best.77
  condbr %v88, label %if.then.32, label %if.end.33
for.cond.28:
  %x.115 = phi i32 [i32 0, %for.body.25], [%v83, %for.step.30]
  %sad.98 = phi i32 [%sad.99, %for.body.25], [%v81, %for.step.30]
  %v47 = icmp slt %x.115, i32 8
  condbr %v47, label %for.body.29, label %for.end.31
for.body.29:
  %v51 = add i32 %by.54, %y.107
  %v52 = mul i32 %v51, i32 16
  %v53 = add i32 %v8, %v52
  %v55 = add i32 %v53, %bx.56
  %v57 = add i32 %v55, %x.115
  %v58 = gep @video, %v57 x i32
  %v59 = load i32, %v58
  %v63 = add i32 %by.54, %dy.83
  %v65 = add i32 %v63, %y.107
  %v66 = mul i32 %v65, i32 16
  %v67 = add i32 %v12, %v66
  %v69 = add i32 %v67, %bx.56
  %v71 = add i32 %v69, %dx.92
  %v73 = add i32 %v71, %x.115
  %v74 = gep @recon, %v73 x i32
  %v75 = load i32, %v74
  %v78 = sub i32 %v59, %v75
  %v79 = abs(%v78)
  %v81 = add i32 %sad.98, %v79
  br label %for.step.30
for.step.30:
  %v83 = add i32 %x.115, i32 1
  br label %for.cond.28
for.end.31:
  br label %for.step.26
if.then.32:
  br label %if.end.33
if.end.33:
  %best.75 = phi i32 [%best.77, %for.end.27], [%sad.99, %if.then.32]
  %mvy.67 = phi i32 [%mvy.69, %for.end.27], [%dy.83, %if.then.32]
  %mvx.59 = phi i32 [%mvx.61, %for.end.27], [%dx.92, %if.then.32]
  br label %for.step.14
for.cond.34:
  %y.88 = phi i32 [i32 0, %if.end], [%v183, %for.step.36]
  %v106 = icmp slt %y.88, i32 8
  condbr %v106, label %for.body.35, label %for.end.37
for.body.35:
  br label %for.cond.38
for.step.36:
  %v183 = add i32 %y.88, i32 1
  br label %for.cond.34
for.end.37:
  %v185 = add i32 %bi.48, i32 1
  br label %for.step.6
for.cond.38:
  %x.142 = phi i32 [i32 0, %for.body.35], [%v181, %for.step.40]
  %v108 = icmp slt %x.142, i32 8
  condbr %v108, label %for.body.39, label %for.end.41
for.body.39:
  %v112 = add i32 %by.54, %y.88
  %v113 = mul i32 %v112, i32 16
  %v114 = add i32 %v8, %v113
  %v116 = add i32 %v114, %bx.56
  %v118 = add i32 %v116, %x.142
  %v119 = gep @video, %v118 x i32
  %v120 = load i32, %v119
  %v122 = icmp sgt %f.51, i32 0
  condbr %v122, label %if.then.42, label %if.end.43
for.step.40:
  %v181 = add i32 %x.142, i32 1
  br label %for.cond.38
for.end.41:
  br label %for.step.36
if.then.42:
  %v126 = add i32 %by.54, %mvy.71
  %v128 = add i32 %v126, %y.88
  %v129 = mul i32 %v128, i32 16
  %v130 = add i32 %v12, %v129
  %v132 = add i32 %v130, %bx.56
  %v134 = add i32 %v132, %mvx.63
  %v136 = add i32 %v134, %x.142
  %v137 = gep @recon, %v136 x i32
  %v138 = load i32, %v137
  br label %if.end.43
if.end.43:
  %pred.152 = phi i32 [i32 128, %for.body.39], [%v138, %if.then.42]
  %v141 = sub i32 %v120, %pred.152
  %v144 = icmp slt %v141, i32 0
  condbr %v144, label %sel.then, label %sel.else
sel.then:
  %v145 = sub i32 i32 0, i32 8
  %v146 = sdiv i32 %v145, i32 2
  br label %sel.end
sel.else:
  %v147 = sdiv i32 i32 8, i32 2
  br label %sel.end
sel.end:
  %v148 = phi i32 [%v146, %sel.then], [%v147, %sel.else]
  %v149 = add i32 %v141, %v148
  %v150 = sdiv i32 %v149, i32 8
  %v152 = mul i32 %bi.48, i32 64
  %v154 = mul i32 %y.88, i32 8
  %v155 = add i32 %v152, %v154
  %v157 = add i32 %v155, %x.142
  %v158 = gep @resq, %v157 x i32
  store %v150, %v158
  %v162 = mul i32 %v150, i32 8
  %v163 = add i32 %pred.152, %v162
  %v165 = icmp slt %v163, i32 0
  condbr %v165, label %if.then.44, label %if.end.45
if.then.44:
  br label %if.end.45
if.end.45:
  %rec.174 = phi i32 [%v163, %sel.end], [i32 0, %if.then.44]
  %v167 = icmp sgt %rec.174, i32 255
  condbr %v167, label %if.then.46, label %if.end.47
if.then.46:
  br label %if.end.47
if.end.47:
  %rec.168 = phi i32 [%rec.174, %if.end.45], [i32 255, %if.then.46]
  %v171 = add i32 %by.54, %y.88
  %v172 = mul i32 %v171, i32 16
  %v173 = add i32 %v8, %v172
  %v175 = add i32 %v173, %bx.56
  %v177 = add i32 %v175, %x.142
  %v178 = gep @recon, %v177 x i32
  store %rec.168, %v178
  br label %for.step.40
}
