; module h264dec
@mvs = global i32 x 32  ; input
@resq = global i32 x 1024  ; input
@params = global i32 x 1  ; input
@video = global i32 x 1024  ; output

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  br label %for.cond
for.cond:
  %f.23 = phi i32 [i32 0, %entry], [%v87, %for.step]
  %bi.22 = phi i32 [i32 0, %entry], [%bi.21, %for.step]
  %v5 = icmp slt %f.23, %v2
  condbr %v5, label %for.body, label %for.end
for.body:
  %v7 = mul i32 %f.23, i32 16
  %v8 = mul i32 %v7, i32 16
  %v10 = sub i32 %f.23, i32 1
  %v11 = mul i32 %v10, i32 16
  %v12 = mul i32 %v11, i32 16
  br label %for.cond.0
for.step:
  %v87 = add i32 %f.23, i32 1
  br label %for.cond
for.end:
  ret void
for.cond.0:
  %by.26 = phi i32 [i32 0, %for.body], [%v85, %for.step.2]
  %bi.21 = phi i32 [%bi.22, %for.body], [%bi.20, %for.step.2]
  %v14 = icmp slt %by.26, i32 16
  condbr %v14, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v85 = add i32 %by.26, i32 8
  br label %for.cond.0
for.end.3:
  br label %for.step
for.cond.4:
  %bx.28 = phi i32 [i32 0, %for.body.1], [%v83, %for.step.6]
  %bi.20 = phi i32 [%bi.21, %for.body.1], [%v81, %for.step.6]
  %v16 = icmp slt %bx.28, i32 16
  condbr %v16, label %for.body.5, label %for.end.7
for.body.5:
  %v18 = mul i32 %bi.20, i32 2
  %v19 = gep @mvs, %v18 x i32
  %v20 = load i32, %v19
  %v22 = mul i32 %bi.20, i32 2
  %v23 = add i32 %v22, i32 1
  %v24 = gep @mvs, %v23 x i32
  %v25 = load i32, %v24
  br label %for.cond.8
for.step.6:
  %v83 = add i32 %bx.28, i32 8
  br label %for.cond.4
for.end.7:
  br label %for.step.2
for.cond.8:
  %y.37 = phi i32 [i32 0, %for.body.5], [%v79, %for.step.10]
  %v27 = icmp slt %y.37, i32 8
  condbr %v27, label %for.body.9, label %for.end.11
for.body.9:
  br label %for.cond.12
for.step.10:
  %v79 = add i32 %y.37, i32 1
  br label %for.cond.8
for.end.11:
  %v81 = add i32 %bi.20, i32 1
  br label %for.step.6
for.cond.12:
  %x.41 = phi i32 [i32 0, %for.body.9], [%v77, %for.step.14]
  %v29 = icmp slt %x.41, i32 8
  condbr %v29, label %for.body.13, label %for.end.15
for.body.13:
  %v31 = icmp sgt %f.23, i32 0
  condbr %v31, label %if.then, label %if.end
for.step.14:
  %v77 = add i32 %x.41, i32 1
  br label %for.cond.12
for.end.15:
  br label %for.step.10
if.then:
  %v35 = add i32 %by.26, %v25
  %v37 = add i32 %v35, %y.37
  %v38 = mul i32 %v37, i32 16
  %v39 = add i32 %v12, %v38
  %v41 = add i32 %v39, %bx.28
  %v43 = add i32 %v41, %v20
  %v45 = add i32 %v43, %x.41
  %v46 = gep @video, %v45 x i32
  %v47 = load i32, %v46
  br label %if.end
if.end:
  %pred.46 = phi i32 [i32 128, %for.body.13], [%v47, %if.then]
  %v50 = mul i32 %bi.20, i32 64
  %v52 = mul i32 %y.37, i32 8
  %v53 = add i32 %v50, %v52
  %v55 = add i32 %v53, %x.41
  %v56 = gep @resq, %v55 x i32
  %v57 = load i32, %v56
  %v58 = mul i32 %v57, i32 8
  %v59 = add i32 %pred.46, %v58
  %v61 = icmp slt %v59, i32 0
  condbr %v61, label %if.then.16, label %if.end.17
if.then.16:
  br label %if.end.17
if.end.17:
  %rec.58 = phi i32 [%v59, %if.end], [i32 0, %if.then.16]
  %v63 = icmp sgt %rec.58, i32 255
  condbr %v63, label %if.then.18, label %if.end.19
if.then.18:
  br label %if.end.19
if.end.19:
  %rec.52 = phi i32 [%rec.58, %if.end.17], [i32 255, %if.then.18]
  %v67 = add i32 %by.26, %y.37
  %v68 = mul i32 %v67, i32 16
  %v69 = add i32 %v8, %v68
  %v71 = add i32 %v69, %bx.28
  %v73 = add i32 %v71, %x.41
  %v74 = gep @video, %v73 x i32
  store %rec.52, %v74
  br label %for.step.14
}
