; module kmeans
@points = global i32 x 256  ; input
@params = global i32 x 1  ; input
@labels = global i32 x 64  ; output
@centroid = global i32 x 16
@csum = global i32 x 16
@ccnt = global i32 x 4

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  br label %for.cond
for.cond:
  %k.42 = phi i32 [i32 0, %entry], [%v21, %for.step]
  %v4 = icmp slt %k.42, i32 4
  condbr %v4, label %for.body, label %for.end
for.body:
  br label %for.cond.0
for.step:
  %v21 = add i32 %k.42, i32 1
  br label %for.cond
for.end:
  br label %for.cond.4
for.cond.0:
  %d.43 = phi i32 [i32 0, %for.body], [%v19, %for.step.2]
  %v6 = icmp slt %d.43, i32 4
  condbr %v6, label %for.body.1, label %for.end.3
for.body.1:
  %v8 = mul i32 %k.42, i32 4
  %v10 = add i32 %v8, %d.43
  %v11 = gep @centroid, %v10 x i32
  %v13 = mul i32 %k.42, i32 4
  %v15 = add i32 %v13, %d.43
  %v16 = gep @points, %v15 x i32
  %v17 = load i32, %v16
  store %v17, %v11
  br label %for.step.2
for.step.2:
  %v19 = add i32 %d.43, i32 1
  br label %for.cond.0
for.end.3:
  br label %for.step
for.cond.4:
  %it.45 = phi i32 [i32 0, %for.end], [%v128, %for.step.6]
  %v23 = icmp slt %it.45, i32 5
  condbr %v23, label %for.body.5, label %for.end.7
for.body.5:
  br label %for.cond.8
for.step.6:
  %v128 = add i32 %it.45, i32 1
  br label %for.cond.4
for.end.7:
  ret void
for.cond.8:
  %k.46 = phi i32 [i32 0, %for.body.5], [%v38, %for.step.10]
  %v25 = icmp slt %k.46, i32 4
  condbr %v25, label %for.body.9, label %for.end.11
for.body.9:
  %v27 = gep @ccnt, %k.46 x i32
  store i32 0, %v27
  br label %for.cond.12
for.step.10:
  %v38 = add i32 %k.46, i32 1
  br label %for.cond.8
for.end.11:
  br label %for.cond.16
for.cond.12:
  %d.48 = phi i32 [i32 0, %for.body.9], [%v36, %for.step.14]
  %v29 = icmp slt %d.48, i32 4
  condbr %v29, label %for.body.13, label %for.end.15
for.body.13:
  %v31 = mul i32 %k.46, i32 4
  %v33 = add i32 %v31, %d.48
  %v34 = gep @csum, %v33 x i32
  store i32 0, %v34
  br label %for.step.14
for.step.14:
  %v36 = add i32 %d.48, i32 1
  br label %for.cond.12
for.end.15:
  br label %for.step.10
for.cond.16:
  %i.51 = phi i32 [i32 0, %for.end.11], [%v99, %for.step.18]
  %v41 = icmp slt %i.51, %v2
  condbr %v41, label %for.body.17, label %for.end.19
for.body.17:
  %v42 = shl i32 i32 1, i32 30
  br label %for.cond.20
for.step.18:
  %v99 = add i32 %i.51, i32 1
  br label %for.cond.16
for.end.19:
  br label %for.cond.32
for.cond.20:
  %k.61 = phi i32 [i32 0, %for.body.17], [%v73, %for.step.22]
  %bestd.58 = phi i32 [%v42, %for.body.17], [%bestd.57, %for.step.22]
  %best.54 = phi i32 [i32 0, %for.body.17], [%best.53, %for.step.22]
  %v44 = icmp slt %k.61, i32 4
  condbr %v44, label %for.body.21, label %for.end.23
for.body.21:
  br label %for.cond.24
for.step.22:
  %v73 = add i32 %k.61, i32 1
  br label %for.cond.20
for.end.23:
  %v75 = gep @labels, %i.51 x i32
  store %best.54, %v75
  %v78 = gep @ccnt, %best.54 x i32
  %v79 = load i32, %v78
  %v80 = add i32 %v79, i32 1
  store %v80, %v78
  br label %for.cond.28
for.cond.24:
  %d.70 = phi i32 [i32 0, %for.body.21], [%v66, %for.step.26]
  %dist.66 = phi i32 [i32 0, %for.body.21], [%v64, %for.step.26]
  %v46 = icmp slt %d.70, i32 4
  condbr %v46, label %for.body.25, label %for.end.27
for.body.25:
  %v48 = mul i32 %i.51, i32 4
  %v50 = add i32 %v48, %d.70
  %v51 = gep @points, %v50 x i32
  %v52 = load i32, %v51
  %v54 = mul i32 %k.61, i32 4
  %v56 = add i32 %v54, %d.70
  %v57 = gep @centroid, %v56 x i32
  %v58 = load i32, %v57
  %v59 = sub i32 %v52, %v58
  %v62 = mul i32 %v59, %v59
  %v64 = add i32 %dist.66, %v62
  br label %for.step.26
for.step.26:
  %v66 = add i32 %d.70, i32 1
  br label %for.cond.24
for.end.27:
  %v69 = icmp slt %dist.66, %bestd.58
  condbr %v69, label %if.then, label %if.end
if.then:
  br label %if.end
if.end:
  %bestd.57 = phi i32 [%bestd.58, %for.end.27], [%dist.66, %if.then]
  %best.53 = phi i32 [%best.54, %for.end.27], [%k.61, %if.then]
  br label %for.step.22
for.cond.28:
  %d.74 = phi i32 [i32 0, %for.end.23], [%v97, %for.step.30]
  %v82 = icmp slt %d.74, i32 4
  condbr %v82, label %for.body.29, label %for.end.31
for.body.29:
  %v84 = mul i32 %best.54, i32 4
  %v86 = add i32 %v84, %d.74
  %v87 = gep @csum, %v86 x i32
  %v89 = mul i32 %i.51, i32 4
  %v91 = add i32 %v89, %d.74
  %v92 = gep @points, %v91 x i32
  %v93 = load i32, %v92
  %v94 = load i32, %v87
  %v95 = add i32 %v94, %v93
  store %v95, %v87
  br label %for.step.30
for.step.30:
  %v97 = add i32 %d.74, i32 1
  br label %for.cond.28
for.end.31:
  br label %for.step.18
for.cond.32:
  %k.64 = phi i32 [i32 0, %for.end.19], [%v126, %for.step.34]
  %v101 = icmp slt %k.64, i32 4
  condbr %v101, label %for.body.33, label %for.end.35
for.body.33:
  %v103 = gep @ccnt, %k.64 x i32
  %v104 = load i32, %v103
  %v105 = icmp sgt %v104, i32 0
  condbr %v105, label %if.then.36, label %if.end.37
for.step.34:
  %v126 = add i32 %k.64, i32 1
  br label %for.cond.32
for.end.35:
  br label %for.step.6
if.then.36:
  br label %for.cond.38
if.end.37:
  br label %for.step.34
for.cond.38:
  %d.81 = phi i32 [i32 0, %if.then.36], [%v124, %for.step.40]
  %v107 = icmp slt %d.81, i32 4
  condbr %v107, label %for.body.39, label %for.end.41
for.body.39:
  %v109 = mul i32 %k.64, i32 4
  %v111 = add i32 %v109, %d.81
  %v112 = gep @centroid, %v111 x i32
  %v114 = mul i32 %k.64, i32 4
  %v116 = add i32 %v114, %d.81
  %v117 = gep @csum, %v116 x i32
  %v118 = load i32, %v117
  %v120 = gep @ccnt, %k.64 x i32
  %v121 = load i32, %v120
  %v122 = sdiv i32 %v118, %v121
  store %v122, %v112
  br label %for.step.40
for.step.40:
  %v124 = add i32 %d.81, i32 1
  br label %for.cond.38
for.end.41:
  br label %if.end.37
}
