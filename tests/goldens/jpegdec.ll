; module jpegdec
@stream = global i32 x 1186  ; input
@params = global i32 x 3  ; input
@image = global i32 x 576  ; output
@coefs = global f64 x 64
@tmpb = global f64 x 64
@zz = global i32 x 64 {0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63}
@qtab = global i32 x 64 {16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56, 14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113, 92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99}
@ctab = global f64 x 64

define void @init_ctab() {
entry:
  br label %for.cond
for.cond:
  %u.4 = phi i32 [i32 0, %entry], [%v27, %for.step]
  %v2 = icmp slt %u.4, i32 8
  condbr %v2, label %for.body, label %for.end
for.body:
  %v4 = icmp sgt %u.4, i32 0
  condbr %v4, label %if.then, label %if.end
for.step:
  %v27 = add i32 %u.4, i32 1
  br label %for.cond
for.end:
  ret void
if.then:
  br label %if.end
if.end:
  %su.5 = phi f64 [f64 0.3535533905932738, %for.body], [f64 0.5, %if.then]
  br label %for.cond.0
for.cond.0:
  %x.7 = phi i32 [i32 0, %if.end], [%v25, %for.step.2]
  %v6 = icmp slt %x.7, i32 8
  condbr %v6, label %for.body.1, label %for.end.3
for.body.1:
  %v8 = mul i32 %u.4, i32 8
  %v10 = add i32 %v8, %x.7
  %v11 = gep @ctab, %v10 x f64
  %v14 = sitofp %x.7 to f64
  %v15 = fmul f64 f64 2.0, %v14
  %v16 = fadd f64 %v15, f64 1.0
  %v18 = sitofp %u.4 to f64
  %v19 = fmul f64 %v16, %v18
  %v20 = fmul f64 %v19, f64 3.141592653589793
  %v21 = fdiv f64 %v20, f64 16.0
  %v22 = cos(%v21)
  %v23 = fmul f64 %su.5, %v22
  store %v23, %v11
  br label %for.step.2
for.step.2:
  %v25 = add i32 %x.7, i32 1
  br label %for.cond.0
for.end.3:
  br label %for.step
}

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  %v3 = gep @params, i32 1 x i32
  %v4 = load i32, %v3
  %v5 = gep @params, i32 2 x i32
  %v6 = load i32, %v5
  call @init_ctab()
  br label %for.cond
for.cond:
  %by.42 = phi i32 [i32 0, %entry], [%v139, %for.step]
  %pos.41 = phi i32 [i32 0, %entry], [%pos.40, %for.step]
  %v9 = icmp slt %by.42, %v4
  condbr %v9, label %for.body, label %for.end
for.body:
  br label %for.cond.0
for.step:
  %v139 = add i32 %by.42, i32 8
  br label %for.cond
for.end:
  ret void
for.cond.0:
  %bx.43 = phi i32 [i32 0, %for.body], [%v137, %for.step.2]
  %pos.40 = phi i32 [%pos.41, %for.body], [%pos.39, %for.step.2]
  %v12 = icmp slt %bx.43, %v2
  condbr %v12, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v137 = add i32 %bx.43, i32 8
  br label %for.cond.0
for.end.3:
  br label %for.step
for.cond.4:
  %i.45 = phi i32 [i32 0, %for.body.1], [%v18, %for.step.6]
  %v14 = icmp slt %i.45, i32 64
  condbr %v14, label %for.body.5, label %for.end.7
for.body.5:
  %v16 = gep @coefs, %i.45 x f64
  store f64 0.0, %v16
  br label %for.step.6
for.step.6:
  %v18 = add i32 %i.45, i32 1
  br label %for.cond.4
for.end.7:
  br label %while.cond
while.cond:
  %zi.48 = phi i32 [i32 0, %for.end.7], [%v52, %if.end.9]
  %pos.38 = phi i32 [%pos.40, %for.end.7], [%v30, %if.end.9]
  %v21 = icmp slt %pos.38, %v6
  condbr %v21, label %while.body, label %while.end
while.body:
  %v23 = gep @stream, %pos.38 x i32
  %v24 = load i32, %v23
  %v26 = add i32 %pos.38, i32 1
  %v27 = gep @stream, %v26 x i32
  %v28 = load i32, %v27
  %v30 = add i32 %pos.38, i32 2
  %v32 = sub i32 i32 0, i32 999
  %v33 = icmp eq %v24, %v32
  condbr %v33, label %if.then, label %if.end
while.end:
  %pos.39 = phi i32 [%pos.38, %while.cond], [%v30, %if.then]
  br label %for.cond.10
if.then:
  br label %while.end
if.end:
  %v36 = add i32 %zi.48, %v24
  %v38 = icmp slt %v36, i32 64
  condbr %v38, label %if.then.8, label %if.end.9
if.then.8:
  %v40 = gep @zz, %v36 x i32
  %v41 = load i32, %v40
  %v42 = gep @coefs, %v41 x f64
  %v45 = gep @zz, %v36 x i32
  %v46 = load i32, %v45
  %v47 = gep @qtab, %v46 x i32
  %v48 = load i32, %v47
  %v49 = mul i32 %v28, %v48
  %v50 = sitofp %v49 to f64
  store %v50, %v42
  br label %if.end.9
if.end.9:
  %v52 = add i32 %v36, i32 1
  br label %while.cond
for.cond.10:
  %y.59 = phi i32 [i32 0, %while.end], [%v85, %for.step.12]
  %v54 = icmp slt %y.59, i32 8
  condbr %v54, label %for.body.11, label %for.end.13
for.body.11:
  br label %for.cond.14
for.step.12:
  %v85 = add i32 %y.59, i32 1
  br label %for.cond.10
for.end.13:
  br label %for.cond.22
for.cond.14:
  %u.62 = phi i32 [i32 0, %for.body.11], [%v83, %for.step.16]
  %v56 = icmp slt %u.62, i32 8
  condbr %v56, label %for.body.15, label %for.end.17
for.body.15:
  br label %for.cond.18
for.step.16:
  %v83 = add i32 %u.62, i32 1
  br label %for.cond.14
for.end.17:
  br label %for.step.12
for.cond.18:
  %v.74 = phi i32 [i32 0, %for.body.15], [%v75, %for.step.20]
  %s.69 = phi f64 [f64 0.0, %for.body.15], [%v73, %for.step.20]
  %v58 = icmp slt %v.74, i32 8
  condbr %v58, label %for.body.19, label %for.end.21
for.body.19:
  %v60 = mul i32 %v.74, i32 8
  %v62 = add i32 %v60, %u.62
  %v63 = gep @coefs, %v62 x f64
  %v64 = load f64, %v63
  %v66 = mul i32 %v.74, i32 8
  %v68 = add i32 %v66, %y.59
  %v69 = gep @ctab, %v68 x f64
  %v70 = load f64, %v69
  %v71 = fmul f64 %v64, %v70
  %v73 = fadd f64 %s.69, %v71
  br label %for.step.20
for.step.20:
  %v75 = add i32 %v.74, i32 1
  br label %for.cond.18
for.end.21:
  %v77 = mul i32 %y.59, i32 8
  %v79 = add i32 %v77, %u.62
  %v80 = gep @tmpb, %v79 x f64
  store %s.69, %v80
  br label %for.step.16
for.cond.22:
  %y.66 = phi i32 [i32 0, %for.end.13], [%v135, %for.step.24]
  %v87 = icmp slt %y.66, i32 8
  condbr %v87, label %for.body.23, label %for.end.25
for.body.23:
  br label %for.cond.26
for.step.24:
  %v135 = add i32 %y.66, i32 1
  br label %for.cond.22
for.end.25:
  br label %for.step.2
for.cond.26:
  %x.79 = phi i32 [i32 0, %for.body.23], [%v133, %for.step.28]
  %v89 = icmp slt %x.79, i32 8
  condbr %v89, label %for.body.27, label %for.end.29
for.body.27:
  br label %for.cond.30
for.step.28:
  %v133 = add i32 %x.79, i32 1
  br label %for.cond.26
for.end.29:
  br label %for.step.24
for.cond.30:
  %u.88 = phi i32 [i32 0, %for.body.27], [%v108, %for.step.32]
  %s.83 = phi f64 [f64 0.0, %for.body.27], [%v106, %for.step.32]
  %v91 = icmp slt %u.88, i32 8
  condbr %v91, label %for.body.31, label %for.end.33
for.body.31:
  %v93 = mul i32 %y.66, i32 8
  %v95 = add i32 %v93, %u.88
  %v96 = gep @tmpb, %v95 x f64
  %v97 = load f64, %v96
  %v99 = mul i32 %u.88, i32 8
  %v101 = add i32 %v99, %x.79
  %v102 = gep @ctab, %v101 x f64
  %v103 = load f64, %v102
  %v104 = fmul f64 %v97, %v103
  %v106 = fadd f64 %s.83, %v104
  br label %for.step.32
for.step.32:
  %v108 = add i32 %u.88, i32 1
  br label %for.cond.30
for.end.33:
  %v111 = fcmp olt %s.83, f64 0.0
  condbr %v111, label %sel.then, label %sel.else
sel.then:
  %v112 = fsub f64 f64 0.0, f64 0.5
  br label %sel.end
sel.else:
  br label %sel.end
sel.end:
  %v113 = phi f64 [%v112, %sel.then], [f64 0.5, %sel.else]
  %v114 = fadd f64 %s.83, %v113
  %v115 = fptosi %v114 to i32
  %v116 = add i32 %v115, i32 128
  %v118 = icmp slt %v116, i32 0
  condbr %v118, label %if.then.34, label %if.end.35
if.then.34:
  br label %if.end.35
if.end.35:
  %p.98 = phi i32 [%v116, %sel.end], [i32 0, %if.then.34]
  %v120 = icmp sgt %p.98, i32 255
  condbr %v120, label %if.then.36, label %if.end.37
if.then.36:
  br label %if.end.37
if.end.37:
  %p.93 = phi i32 [%p.98, %if.end.35], [i32 255, %if.then.36]
  %v123 = add i32 %by.42, %y.66
  %v125 = mul i32 %v123, %v2
  %v127 = add i32 %v125, %bx.43
  %v129 = add i32 %v127, %x.79
  %v130 = gep @image, %v129 x i32
  store %p.93, %v130
  br label %for.step.28
}
