; module segm
@image = global i32 x 484  ; input
@params = global i32 x 2  ; input
@labels = global i32 x 484  ; output
@centroid = global i32 x 3
@seg_sum = global i32 x 3
@seg_cnt = global i32 x 3
@rawlab = global i32 x 484

define void @main() {
entry:
  %v1 = gep @params, i32 0 x i32
  %v2 = load i32, %v1
  %v3 = gep @params, i32 1 x i32
  %v4 = load i32, %v3
  %v7 = mul i32 %v2, %v4
  br label %for.cond
for.cond:
  %k.56 = phi i32 [i32 0, %entry], [%v19, %for.step]
  %v9 = icmp slt %k.56, i32 3
  condbr %v9, label %for.body, label %for.end
for.body:
  %v11 = gep @centroid, %k.56 x i32
  %v13 = mul i32 i32 2, %k.56
  %v14 = add i32 %v13, i32 1
  %v15 = mul i32 i32 255, %v14
  %v16 = mul i32 i32 2, i32 3
  %v17 = sdiv i32 %v15, %v16
  store %v17, %v11
  br label %for.step
for.step:
  %v19 = add i32 %k.56, i32 1
  br label %for.cond
for.end:
  br label %for.cond.0
for.cond.0:
  %it.57 = phi i32 [i32 0, %for.end], [%v88, %for.step.2]
  %v21 = icmp slt %it.57, i32 4
  condbr %v21, label %for.body.1, label %for.end.3
for.body.1:
  br label %for.cond.4
for.step.2:
  %v88 = add i32 %it.57, i32 1
  br label %for.cond.0
for.end.3:
  br label %for.cond.22
for.cond.4:
  %k.58 = phi i32 [i32 0, %for.body.1], [%v29, %for.step.6]
  %v23 = icmp slt %k.58, i32 3
  condbr %v23, label %for.body.5, label %for.end.7
for.body.5:
  %v25 = gep @seg_sum, %k.58 x i32
  store i32 0, %v25
  %v27 = gep @seg_cnt, %k.58 x i32
  store i32 0, %v27
  br label %for.step.6
for.step.6:
  %v29 = add i32 %k.58, i32 1
  br label %for.cond.4
for.end.7:
  br label %for.cond.8
for.cond.8:
  %i.61 = phi i32 [i32 0, %for.end.7], [%v69, %for.step.10]
  %v32 = icmp slt %i.61, %v7
  condbr %v32, label %for.body.9, label %for.end.11
for.body.9:
  %v34 = gep @image, %i.61 x i32
  %v35 = load i32, %v34
  %v37 = gep @centroid, i32 0 x i32
  %v38 = load i32, %v37
  %v39 = sub i32 %v35, %v38
  %v40 = abs(%v39)
  br label %for.cond.12
for.step.10:
  %v69 = add i32 %i.61, i32 1
  br label %for.cond.8
for.end.11:
  br label %for.cond.16
for.cond.12:
  %k.73 = phi i32 [i32 1, %for.body.9], [%v55, %for.step.14]
  %bestd.70 = phi i32 [%v40, %for.body.9], [%bestd.69, %for.step.14]
  %best.66 = phi i32 [i32 0, %for.body.9], [%best.65, %for.step.14]
  %v42 = icmp slt %k.73, i32 3
  condbr %v42, label %for.body.13, label %for.end.15
for.body.13:
  %v45 = gep @centroid, %k.73 x i32
  %v46 = load i32, %v45
  %v47 = sub i32 %v35, %v46
  %v48 = abs(%v47)
  %v51 = icmp slt %v48, %bestd.70
  condbr %v51, label %if.then, label %if.end
for.step.14:
  %v55 = add i32 %k.73, i32 1
  br label %for.cond.12
for.end.15:
  %v57 = gep @rawlab, %i.61 x i32
  store %best.66, %v57
  %v60 = gep @seg_sum, %best.66 x i32
  %v62 = load i32, %v60
  %v63 = add i32 %v62, %v35
  store %v63, %v60
  %v65 = gep @seg_cnt, %best.66 x i32
  %v66 = load i32, %v65
  %v67 = add i32 %v66, i32 1
  store %v67, %v65
  br label %for.step.10
if.then:
  br label %if.end
if.end:
  %bestd.69 = phi i32 [%bestd.70, %for.body.13], [%v48, %if.then]
  %best.65 = phi i32 [%best.66, %for.body.13], [%k.73, %if.then]
  br label %for.step.14
for.cond.16:
  %k.76 = phi i32 [i32 0, %for.end.11], [%v86, %for.step.18]
  %v71 = icmp slt %k.76, i32 3
  condbr %v71, label %for.body.17, label %for.end.19
for.body.17:
  %v73 = gep @seg_cnt, %k.76 x i32
  %v74 = load i32, %v73
  %v75 = icmp sgt %v74, i32 0
  condbr %v75, label %if.then.20, label %if.end.21
for.step.18:
  %v86 = add i32 %k.76, i32 1
  br label %for.cond.16
for.end.19:
  br label %for.step.2
if.then.20:
  %v77 = gep @centroid, %k.76 x i32
  %v79 = gep @seg_sum, %k.76 x i32
  %v80 = load i32, %v79
  %v82 = gep @seg_cnt, %k.76 x i32
  %v83 = load i32, %v82
  %v84 = sdiv i32 %v80, %v83
  store %v84, %v77
  br label %if.end.21
if.end.21:
  br label %for.step.18
for.cond.22:
  %y.60 = phi i32 [i32 0, %for.end.3], [%v162, %for.step.24]
  %v91 = icmp slt %y.60, %v4
  condbr %v91, label %for.body.23, label %for.end.25
for.body.23:
  br label %for.cond.26
for.step.24:
  %v162 = add i32 %y.60, i32 1
  br label %for.cond.22
for.end.25:
  ret void
for.cond.26:
  %x.81 = phi i32 [i32 0, %for.body.23], [%v160, %for.step.28]
  %v94 = icmp slt %x.81, %v2
  condbr %v94, label %for.body.27, label %for.end.29
for.body.27:
  %v95 = sub i32 i32 0, i32 1
  br label %for.cond.30
for.step.28:
  %v160 = add i32 %x.81, i32 1
  br label %for.cond.26
for.end.29:
  br label %for.step.24
for.cond.30:
  %dy.98 = phi i32 [%v95, %for.body.27], [%v143, %for.step.32]
  %votes2.95 = phi i32 [i32 0, %for.body.27], [%votes2.94, %for.step.32]
  %votes1.90 = phi i32 [i32 0, %for.body.27], [%votes1.89, %for.step.32]
  %votes0.85 = phi i32 [i32 0, %for.body.27], [%votes0.84, %for.step.32]
  %v97 = icmp sle %dy.98, i32 1
  condbr %v97, label %for.body.31, label %for.end.33
for.body.31:
  %v98 = sub i32 i32 0, i32 1
  br label %for.cond.34
for.step.32:
  %v143 = add i32 %dy.98, i32 1
  br label %for.cond.30
for.end.33:
  %v147 = icmp sgt %votes1.90, %votes0.85
  condbr %v147, label %if.then.52, label %if.end.53
for.cond.34:
  %dx.101 = phi i32 [%v98, %for.body.31], [%v141, %for.step.36]
  %votes2.94 = phi i32 [%votes2.95, %for.body.31], [%votes2.93, %for.step.36]
  %votes1.89 = phi i32 [%votes1.90, %for.body.31], [%votes1.88, %for.step.36]
  %votes0.84 = phi i32 [%votes0.85, %for.body.31], [%votes0.83, %for.step.36]
  %v100 = icmp sle %dx.101, i32 1
  condbr %v100, label %for.body.35, label %for.end.37
for.body.35:
  %v103 = add i32 %y.60, %dy.98
  %v106 = add i32 %x.81, %dx.101
  %v108 = icmp slt %v103, i32 0
  condbr %v108, label %if.then.38, label %if.end.39
for.step.36:
  %v141 = add i32 %dx.101, i32 1
  br label %for.cond.34
for.end.37:
  br label %for.step.32
if.then.38:
  br label %if.end.39
if.end.39:
  %ny.117 = phi i32 [%v103, %for.body.35], [i32 0, %if.then.38]
  %v110 = icmp slt %v106, i32 0
  condbr %v110, label %if.then.40, label %if.end.41
if.then.40:
  br label %if.end.41
if.end.41:
  %nx.123 = phi i32 [%v106, %if.end.39], [i32 0, %if.then.40]
  %v113 = icmp sge %ny.117, %v4
  condbr %v113, label %if.then.42, label %if.end.43
if.then.42:
  %v115 = sub i32 %v4, i32 1
  br label %if.end.43
if.end.43:
  %ny.112 = phi i32 [%ny.117, %if.end.41], [%v115, %if.then.42]
  %v118 = icmp sge %nx.123, %v2
  condbr %v118, label %if.then.44, label %if.end.45
if.then.44:
  %v120 = sub i32 %v2, i32 1
  br label %if.end.45
if.end.45:
  %nx.118 = phi i32 [%nx.123, %if.end.43], [%v120, %if.then.44]
  %v123 = mul i32 %ny.112, %v2
  %v125 = add i32 %v123, %nx.118
  %v126 = gep @rawlab, %v125 x i32
  %v127 = load i32, %v126
  %v129 = icmp eq %v127, i32 0
  condbr %v129, label %if.then.46, label %if.end.47
if.then.46:
  %v131 = add i32 %votes0.84, i32 1
  br label %if.end.47
if.end.47:
  %votes0.83 = phi i32 [%votes0.84, %if.end.45], [%v131, %if.then.46]
  %v133 = icmp eq %v127, i32 1
  condbr %v133, label %if.then.48, label %if.end.49
if.then.48:
  %v135 = add i32 %votes1.89, i32 1
  br label %if.end.49
if.end.49:
  %votes1.88 = phi i32 [%votes1.89, %if.end.47], [%v135, %if.then.48]
  %v137 = icmp eq %v127, i32 2
  condbr %v137, label %if.then.50, label %if.end.51
if.then.50:
  %v139 = add i32 %votes2.94, i32 1
  br label %if.end.51
if.end.51:
  %votes2.93 = phi i32 [%votes2.94, %if.end.49], [%v139, %if.then.50]
  br label %for.step.36
if.then.52:
  br label %if.end.53
if.end.53:
  %wv.109 = phi i32 [%votes0.85, %for.end.33], [%votes1.90, %if.then.52]
  %winner.108 = phi i32 [i32 0, %for.end.33], [i32 1, %if.then.52]
  %v151 = icmp sgt %votes2.95, %wv.109
  condbr %v151, label %if.then.54, label %if.end.55
if.then.54:
  br label %if.end.55
if.end.55:
  %winner.105 = phi i32 [%winner.108, %if.end.53], [i32 2, %if.then.54]
  %v154 = mul i32 %y.60, %v2
  %v156 = add i32 %v154, %x.81
  %v157 = gep @labels, %v156 x i32
  store %winner.105, %v157
  br label %for.step.28
}
