"""Tests for simulator events, traps, and guard statistics."""

import pytest

from repro.sim import (
    ArithmeticTrap,
    GuardStats,
    GuardTrap,
    MemoryTrap,
    SimTrap,
    StackOverflowTrap,
    TimeoutTrap,
)


class TestTrapHierarchy:
    def test_all_traps_are_sim_traps(self):
        for trap in (
            MemoryTrap("null", 0, 1),
            ArithmeticTrap("sdiv", 2),
            TimeoutTrap(100, 101),
            GuardTrap(3, "range", 4),
            StackOverflowTrap(5),
        ):
            assert isinstance(trap, SimTrap)
            assert trap.cycle >= 0

    def test_memory_trap_carries_details(self):
        trap = MemoryTrap("out-of-bounds", 0x1234, 99)
        assert trap.kind == "out-of-bounds"
        assert trap.address == 0x1234
        assert trap.cycle == 99
        assert "0x1234" in str(trap)
        assert "cycle 99" in str(trap)

    def test_guard_trap_carries_guard_identity(self):
        trap = GuardTrap(7, "values", 123)
        assert trap.guard_id == 7
        assert trap.guard_kind == "values"
        assert "guard 7" in str(trap)

    def test_timeout_records_budget(self):
        trap = TimeoutTrap(5000, 5001)
        assert trap.limit == 5000


class TestGuardStats:
    def test_failure_accumulation(self):
        stats = GuardStats()
        stats.record_failure(3)
        stats.record_failure(3)
        stats.record_failure(9)
        assert stats.total_failures == 3
        assert stats.failures_by_guard == {3: 2, 9: 1}

    def test_empty(self):
        assert GuardStats().total_failures == 0
