"""Report aggregation and the ``python -m repro.obs report`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.events import SCHEMA_VERSION, EventLogWriter
from repro.obs.report import LogReport, percentile


def _write_synthetic_log(path):
    """Two-campaign log with known outcomes, latencies, and check fires."""
    with EventLogWriter(str(path)) as w:
        w.emit({"event": "campaign_begin", "v": SCHEMA_VERSION,
                "workload": "w1", "scheme": "dup",
                "golden_instructions": 1000,
                "golden_guard_failures": 0, "golden_guard_evaluations": 10})
        trials = [
            # (outcome, bit, register, function, latency, check)
            ("Masked", 0, "a", "main", None, None),
            ("Masked", 1, "a", "main", None, None),
            ("SWDetect", 2, "b", "main", 10, 1),
            ("SWDetect", 3, "b", "helper", 30, 1),
            ("SWDetect", 4, "c", "helper", 20, 2),
            ("HWDetect", 5, "c", "main", 500, None),
            ("Failure", 6, "d", "main", None, None),
            ("USDC", 7, "d", "main", None, None),
        ]
        for i, (outcome, bit, reg, fn, latency, check) in enumerate(trials):
            w.emit({
                "event": "trial", "v": SCHEMA_VERSION, "i": i,
                "cycle": 100 + i, "bit": bit, "seed": i,
                "outcome": outcome, "landed": True, "live": outcome != "Masked",
                "register": reg, "function": fn,
                "event_cycle": (100 + i + latency) if latency else None,
                "latency": latency, "check": check,
                "check_kind": "eq" if check else "",
                "trap": "guard" if outcome == "SWDetect" else "",
                "fidelity": None, "sdc": outcome == "USDC",
                "asdc": False, "magnitude": 0.0,
            })
        w.emit({"event": "campaign_end", "v": SCHEMA_VERSION,
                "workload": "w1", "scheme": "dup", "trials": len(trials),
                "counts": {"Masked": 2, "SWDetect": 3, "HWDetect": 1,
                           "Failure": 1, "USDC": 1}})
        w.emit({"event": "cache_hit", "v": SCHEMA_VERSION,
                "workload": "w2", "scheme": "full_dup", "key": "f" * 64,
                "meta": {"created_iso": "2026-08-06T00:00:00Z", "trials": 60}})


# ---------------------------------------------------------------------------
# percentile helper
# ---------------------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [10, 20, 30, 40, 50]
    assert percentile(values, 0.5) == 30
    assert percentile(values, 0.0) == 10
    assert percentile(values, 1.0) == 50
    assert percentile([7], 0.9) == 7
    with pytest.raises(ValueError):
        percentile([], 0.5)


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def test_report_aggregates_outcomes_latency_and_checks(tmp_path):
    log = tmp_path / "log.jsonl"
    _write_synthetic_log(log)
    report = LogReport.from_paths([log])

    assert report.trials == 8
    assert len(report.campaigns) == 1
    assert len(report.cache_hits) == 1
    assert report.outcome_counts["Masked"] == 2
    assert report.outcome_counts["SWDetect"] == 3
    assert sorted(report.sw_latencies) == [10, 20, 30]
    assert report.hw_latencies == [500]
    # check 1 fired twice, check 2 once
    assert report.check_fires[1][0] == 2
    assert report.check_fires[2][0] == 1

    data = report.to_json()
    assert data["detection_latency"]["swdetect"]["p50"] == 20
    assert data["detection_latency"]["hwdetect"]["count"] == 1
    assert data["checks"]["1"]["share_of_swdetect"] == pytest.approx(2 / 3)
    assert data["by_function"]["main"]["Masked"] == 2
    assert data["by_bit"]["00"]["Masked"] == 1
    assert data["schema_versions"] == [SCHEMA_VERSION]


def test_report_merges_multiple_logs(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _write_synthetic_log(a)
    _write_synthetic_log(b)
    report = LogReport.from_paths([a, b])
    assert report.trials == 16
    assert len(report.campaigns) == 2


def test_report_counts_corrupt_lines(tmp_path):
    log = tmp_path / "log.jsonl"
    _write_synthetic_log(log)
    with open(log, "a") as fh:
        fh.write("{broken\n")
    report = LogReport.from_paths([log])
    assert report.skipped_lines == 1
    assert "corrupt lines skipped: 1" in report.render_text()


def test_render_text_contains_key_sections(tmp_path):
    log = tmp_path / "log.jsonl"
    _write_synthetic_log(log)
    text = LogReport.from_paths([log]).render_text()
    assert "w1/dup" in text
    assert "served from cache" in text
    assert "per-check effectiveness" in text
    assert "by bit position" in text
    assert "by register" in text
    assert "by function" in text
    assert "p50=20" in text  # sw latency median


def test_render_text_empty_log(tmp_path):
    log = tmp_path / "empty.jsonl"
    log.write_text("")
    text = LogReport.from_paths([log]).render_text()
    assert "no trial events found" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_report_text_and_json(tmp_path, capsys):
    log = tmp_path / "log.jsonl"
    out = tmp_path / "report.json"
    _write_synthetic_log(log)
    assert obs_main(["report", str(log), "--json", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "campaign trial log report" in captured
    data = json.loads(out.read_text())
    assert data["trials"] == 8
    assert data["outcomes"]["SWDetect"] == 3


def test_cli_report_json_to_stdout(tmp_path, capsys):
    log = tmp_path / "log.jsonl"
    _write_synthetic_log(log)
    assert obs_main(["report", str(log), "--json", "-"]) == 0
    captured = capsys.readouterr().out
    assert '"trials": 8' in captured
