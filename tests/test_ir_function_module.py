"""Unit tests for Function and Module container behaviour."""

import pytest

from repro.ir import I32, IRBuilder, Module, VOID


class TestFunction:
    def test_block_names_deduplicated(self):
        m = Module()
        fn = m.add_function("f", I32)
        a = fn.add_block("body")
        b = fn.add_block("body")
        assert a.name != b.name

    def test_add_block_after(self):
        m = Module()
        fn = m.add_function("f", I32)
        first = fn.add_block("first")
        third = fn.add_block("third")
        second = fn.add_block("second", after=first)
        assert fn.blocks == [first, second, third]

    def test_entry_requires_blocks(self):
        m = Module()
        fn = m.add_function("f", I32)
        with pytest.raises(ValueError, match="has no blocks"):
            fn.entry

    def test_block_lookup(self):
        m = Module()
        fn = m.add_function("f", I32)
        bb = fn.add_block("here")
        assert fn.block("here") is bb
        with pytest.raises(KeyError):
            fn.block("gone")

    def test_value_names_unique(self):
        m = Module()
        fn = m.add_function("f", I32)
        b = IRBuilder(fn.add_block("entry"))
        names = {b.add(b.const(1), b.const(2)).name for _ in range(20)}
        assert len(names) == 20

    def test_instruction_iteration_in_block_order(self):
        m = Module()
        fn = m.add_function("f", I32)
        b = IRBuilder(fn.add_block("a"))
        v1 = b.add(b.const(1), b.const(1))
        second = fn.add_block("b")
        b.br(second)
        b.set_block(second)
        v2 = b.add(v1, v1)
        b.ret(v2)
        instrs = list(fn.instructions())
        assert instrs.index(v1) < instrs.index(v2)
        assert fn.num_instructions() == 4

    def test_values_iterator_skips_void(self):
        m = Module()
        fn = m.add_function("f", VOID)
        b = IRBuilder(fn.add_block("entry"))
        b.add(b.const(1), b.const(1))
        b.ret()
        assert all(v.has_result for v in fn.values())


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module()
        m.add_function("f", I32)
        with pytest.raises(ValueError, match="duplicate function"):
            m.add_function("f", I32)

    def test_iteration_yields_functions(self):
        m = Module()
        m.add_function("a", I32)
        m.add_function("b", I32)
        assert [f.name for f in m] == ["a", "b"]

    def test_num_instructions_sums_functions(self):
        m = Module()
        for name in ("a", "b"):
            fn = m.add_function(name, I32)
            b = IRBuilder(fn.add_block("entry"))
            b.ret(b.const(0))
        assert m.num_instructions() == 2

    def test_repr(self):
        m = Module("demo")
        assert "demo" in repr(m)
