"""Unit tests for the Workload base-class plumbing."""

import numpy as np
import pytest

from repro.sim import Interpreter, SimConfig
from repro.workloads import Workload, get_workload


class TestBasePlumbing:
    def test_build_requires_source(self):
        class Empty(Workload):
            name = "empty"

        with pytest.raises(ValueError, match="no source"):
            Empty().build_module()

    def test_output_names_requires_outputs(self):
        from repro.frontend import compile_source

        class NoOut(Workload):
            name = "noout"
            source = "void main() { int x = 1; }"

        w = NoOut()
        module = w.build_module()
        with pytest.raises(ValueError, match="no output globals"):
            w.output_names(module)

    def test_run_with_custom_config(self):
        w = get_workload("tiff2bw")
        module = w.build_module()
        config = SimConfig(stack_segment_bytes=1 << 16)
        out, result = w.run(module, w.test_inputs(), config=config)
        assert result.instructions > 0
        assert set(out) == {"bw"}

    def test_run_kwargs_forwarded(self):
        from repro.sim import TimeoutTrap

        w = get_workload("tiff2bw")
        module = w.build_module()
        with pytest.raises(TimeoutTrap):
            w.run(module, w.test_inputs(), max_instructions=100)

    def test_fidelity_uses_all_outputs(self):
        """Multi-output workloads concatenate outputs for fidelity."""
        w = get_workload("mp3enc")  # outputs: coefq + sfdelta
        module = w.build_module()
        out, _ = w.run(module, w.test_inputs())
        tweaked = {k: v.copy() for k, v in out.items()}
        tweaked["sfdelta"] = tweaked["sfdelta"].copy()
        tweaked["sfdelta"][0] += 1
        fid = w.fidelity(out, tweaked)
        assert not fid.identical  # a change in either output is visible

    def test_repr(self):
        assert "kmeans" in repr(get_workload("kmeans"))


class TestSchemeStatsVerifyFlag:
    def test_apply_scheme_without_verification(self):
        from repro.transforms import apply_scheme

        w = get_workload("tiff2bw")
        module = w.build_module()
        stats = apply_scheme(module, "dup", verify=False)
        assert stats.num_duplicated > 0
        # still executable
        out, _ = w.run(module, w.test_inputs())
        assert set(out) == {"bw"}
