"""Focused tests for the experiment runner's caching behaviour."""

import pytest

from repro.experiments import ExperimentCache, ExperimentSettings
from repro.experiments.runner import reset_global_cache, global_cache


@pytest.fixture
def cache():
    return ExperimentCache(ExperimentSettings(trials=4, workloads=("tiff2bw",)))


class TestCacheKeys:
    def test_swap_variants_cached_separately(self, cache):
        normal = cache.prepared("tiff2bw", "original", swap_train_test=False)
        swapped = cache.prepared("tiff2bw", "original", swap_train_test=True)
        assert normal is not swapped
        assert normal.golden_instructions != swapped.golden_instructions

    def test_schemes_cached_separately(self, cache):
        a = cache.prepared("tiff2bw", "original")
        b = cache.prepared("tiff2bw", "dup")
        assert a is not b
        assert b.scheme_stats.num_duplicated > 0

    def test_campaign_reuses_prepared_module(self, cache):
        prepared = cache.prepared("tiff2bw", "dup")
        campaign = cache.campaign("tiff2bw", "dup")
        assert campaign.golden_instructions == prepared.golden_instructions

    def test_runtime_cycles_memoised(self, cache):
        a = cache.runtime_cycles("tiff2bw", "original")
        b = cache.runtime_cycles("tiff2bw", "original")
        assert a == b > 0

    def test_overhead_relative_to_original(self, cache):
        ratio = cache.overhead("tiff2bw", "full_dup")
        base = cache.runtime_cycles("tiff2bw", "original")
        protected = cache.runtime_cycles("tiff2bw", "full_dup")
        assert ratio == pytest.approx(protected / base - 1.0)


class TestGlobalCache:
    def test_reset_replaces_instance(self):
        first = reset_global_cache(
            ExperimentSettings(trials=2, workloads=("tiff2bw",))
        )
        assert global_cache() is first
        second = reset_global_cache(
            ExperimentSettings(trials=3, workloads=("tiff2bw",))
        )
        assert global_cache() is second
        assert second.settings.trials == 3

    def test_campaign_config_carries_settings(self):
        settings = ExperimentSettings(trials=11, seed=42)
        config = settings.campaign_config()
        assert config.trials == 11 and config.seed == 42
