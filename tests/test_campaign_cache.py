"""On-disk campaign cache: key sensitivity, round-trips, runner integration."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments import ExperimentCache, ExperimentSettings
from repro.faultinjection import (
    CampaignCache,
    CampaignConfig,
    CampaignResult,
    campaign_key,
    prepare,
    run_campaign,
)
from repro.faultinjection import diskcache
from repro.sim.config import SimConfig
from repro.transforms.checkconfig import ProtectionConfig
from repro.workloads.registry import get_workload

from .conftest import build_sum_loop


@pytest.fixture
def module():
    m, _ = build_sum_loop()
    return m


@pytest.fixture
def config():
    return CampaignConfig(trials=8, seed=7)


# ---------------------------------------------------------------------------
# campaign_key sensitivity
# ---------------------------------------------------------------------------


def test_key_stable_for_identical_inputs(module, config):
    assert campaign_key(module, "w", "dup", config) == campaign_key(
        module, "w", "dup", config
    )


def test_key_changes_with_workload_scheme_trials_seed(module, config):
    base = campaign_key(module, "w", "dup", config)
    assert campaign_key(module, "other", "dup", config) != base
    assert campaign_key(module, "w", "none", config) != base
    assert campaign_key(module, "w", "dup", replace(config, trials=9)) != base
    assert campaign_key(module, "w", "dup", replace(config, seed=8)) != base


def test_key_changes_when_protection_config_changes(module, config):
    base = campaign_key(module, "w", "dup", config)
    tweaked = replace(config, protection=ProtectionConfig(histogram_bins=9))
    assert campaign_key(module, "w", "dup", tweaked) != base


def test_key_changes_when_sim_config_changes(module, config):
    base = campaign_key(module, "w", "dup", config)
    tweaked = replace(config, sim=SimConfig(phys_int_registers=4))
    assert campaign_key(module, "w", "dup", tweaked) != base


def test_key_ignores_jobs(module, config):
    """jobs cannot affect results (plans are pre-drawn), so it must not
    fragment the cache."""
    assert campaign_key(module, "w", "dup", replace(config, jobs=8)) == campaign_key(
        module, "w", "dup", config
    )


def test_key_covers_module_ir(config):
    m3, _ = build_sum_loop(mul_factor=3)
    m5, _ = build_sum_loop(mul_factor=5)
    assert campaign_key(m3, "w", "dup", config) != campaign_key(
        m5, "w", "dup", config
    )


def test_key_covers_schema_version(module, config, monkeypatch):
    base = campaign_key(module, "w", "dup", config)
    monkeypatch.setattr(diskcache, "CACHE_SCHEMA_VERSION",
                        diskcache.CACHE_SCHEMA_VERSION + 1)
    assert campaign_key(module, "w", "dup", config) != base


# ---------------------------------------------------------------------------
# CampaignResult serialisation round-trip
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_campaign():
    config = CampaignConfig(trials=6, seed=11)
    workload = get_workload("tiff2bw")
    prepared = prepare(workload, "dup", config)
    return run_campaign(workload, "dup", config, prepared=prepared)


def test_result_round_trip_is_bit_exact(small_campaign):
    restored = CampaignResult.from_dict(small_campaign.to_dict())
    assert restored.workload == small_campaign.workload
    assert restored.scheme == small_campaign.scheme
    assert restored.golden_instructions == small_campaign.golden_instructions
    assert restored.golden_guard_failures == small_campaign.golden_guard_failures
    assert (restored.golden_guard_evaluations
            == small_campaign.golden_guard_evaluations)
    # dataclass equality covers every TrialResult field, incl. fidelity/ASDC
    assert restored.trials == small_campaign.trials


def test_result_round_trip_survives_json(small_campaign):
    blob = json.dumps(small_campaign.to_dict())
    restored = CampaignResult.from_dict(json.loads(blob))
    assert restored.trials == small_campaign.trials


# ---------------------------------------------------------------------------
# CampaignCache storage behaviour
# ---------------------------------------------------------------------------


def test_cache_put_get_round_trip(tmp_path, small_campaign):
    cache = CampaignCache(root=tmp_path, enabled=True)
    cache.put("deadbeef", small_campaign)
    restored = cache.get("deadbeef")
    assert restored is not None
    assert restored.trials == small_campaign.trials


def test_cache_miss_and_corrupt_entry(tmp_path, small_campaign):
    cache = CampaignCache(root=tmp_path, enabled=True)
    assert cache.get("no-such-key") is None
    cache.put("bad", small_campaign)
    (tmp_path / "campaign-bad.json").write_text("{not json")
    assert cache.get("bad") is None
    (tmp_path / "campaign-bad.json").write_text('{"valid": "but wrong shape"}')
    assert cache.get("bad") is None


def test_cache_disabled_is_noop(tmp_path, small_campaign):
    cache = CampaignCache(root=tmp_path, enabled=False)
    cache.put("k", small_campaign)
    assert list(tmp_path.iterdir()) == []
    assert cache.get("k") is None


def test_cache_enabled_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert not diskcache.cache_enabled()
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert not diskcache.cache_enabled()
    monkeypatch.setenv("REPRO_CACHE", "1")
    assert diskcache.cache_enabled()
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    assert diskcache.cache_enabled()


def test_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
    assert diskcache.cache_dir() == tmp_path / "x"


# ---------------------------------------------------------------------------
# ExperimentCache integration: disk hits skip recomputation
# ---------------------------------------------------------------------------


def test_experiment_cache_disk_hit_skips_recompute(tmp_path, monkeypatch):
    settings = ExperimentSettings(trials=4, workloads=("tiff2bw",))
    disk = CampaignCache(root=tmp_path, enabled=True)

    first = ExperimentCache(settings, disk_cache=disk)
    original = first.campaign("tiff2bw", "dup")
    assert len(list(tmp_path.glob("campaign-*.json"))) == 1

    # A fresh in-memory cache with the same disk cache must load the stored
    # result without ever running trials.
    from repro.experiments import runner

    def boom(*args, **kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("campaign recomputed despite disk cache hit")

    monkeypatch.setattr(runner, "run_campaign", boom)
    second = ExperimentCache(settings, disk_cache=disk)
    restored = second.campaign("tiff2bw", "dup")
    assert restored.trials == original.trials
    assert restored.counts() == original.counts()
