"""Structural invariants every workload must satisfy (harness contracts)."""

import numpy as np
import pytest

from repro.ir import I32
from repro.workloads import all_workloads

ALL = all_workloads()


@pytest.mark.parametrize("workload", ALL, ids=[w.name for w in ALL])
class TestInputContracts:
    def test_inputs_fit_their_buffers(self, workload):
        module = workload.build_module()
        for label, inputs in (("train", workload.train_inputs()),
                              ("test", workload.test_inputs())):
            for name, data in inputs.items():
                gv = module.global_var(name)
                assert len(data) <= gv.count, (
                    f"{workload.name}/{label}: @{name} gets {len(data)} "
                    f"elements into a {gv.count}-element buffer"
                )

    def test_inputs_bind_only_input_globals(self, workload):
        module = workload.build_module()
        input_names = {g.name for g in module.input_globals()}
        for inputs in (workload.train_inputs(), workload.test_inputs()):
            assert set(inputs) == input_names, (
                f"{workload.name}: bound {sorted(inputs)} but module declares "
                f"inputs {sorted(input_names)}"
            )

    def test_integer_inputs_are_i32_representable(self, workload):
        module = workload.build_module()
        for inputs in (workload.train_inputs(), workload.test_inputs()):
            for name, data in inputs.items():
                gv = module.global_var(name)
                if gv.elem_type is not I32:
                    continue
                arr = np.asarray(data)
                assert arr.min() >= -(1 << 31) and arr.max() < (1 << 31)

    def test_inputs_are_deterministic(self, workload):
        a = workload.test_inputs()
        b = workload.test_inputs()
        assert set(a) == set(b)
        for k in a:
            assert list(a[k]) == list(b[k])

    def test_metadata_complete(self, workload):
        assert workload.name and workload.suite and workload.description
        assert workload.category in {"image", "audio", "video", "vision", "ml"}
        assert workload.fidelity_metric in {
            "psnr", "segsnr", "class_error", "matrix_mismatch"
        }
        assert workload.fidelity_threshold > 0
        assert workload.train_label and workload.test_label

    def test_source_has_no_reserved_prefix(self, workload):
        """'cfcss.' names are reserved for the signature transform's slots."""
        assert "cfcss" not in workload.source
