"""Tests for the workload CLI (python -m repro.workloads)."""

import pytest

from repro.workloads.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "jpegenc" in out and "svm" in out

    def test_run_reports_stats(self, capsys):
        assert main(["run", "tiff2bw", "--scheme", "dup"]) == 0
        out = capsys.readouterr().out
        assert "state variables" in out
        assert "duplicated instructions" in out
        assert "estimated cycles" in out

    def test_run_with_injection_classifies(self, capsys):
        assert main([
            "run", "g721dec", "--scheme", "dup",
            "--inject", "9000", "--bit", "14",
        ]) == 0
        out = capsys.readouterr().out
        assert "injection @ cycle 9000" in out
        assert any(
            outcome in out
            for outcome in ("Masked", "SWDetect", "HWDetect", "Failure", "USDC")
        )

    def test_ir_dump(self, capsys):
        assert main(["ir", "kmeans", "--scheme", "dup"]) == 0
        out = capsys.readouterr().out
        assert "define void @main" in out
        assert "guard_eq" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "quake3"])
