"""Producer-chain traversal through merge phis (the loop-context-aware mode)."""

import pytest

from repro.analysis import LoopInfo, producer_chain
from repro.frontend import compile_source
from repro.ir import Phi


@pytest.fixture
def minmax_module():
    return compile_source("""
    input int data[8];
    output int out[1];
    void main() {
        int hi = 0;
        for (int i = 0; i < 8; i++) {
            if (data[i] > hi) { hi = data[i]; }
        }
        out[0] = hi;
    }
    """)


def _header_phi(fn, fragment):
    header = fn.block("for.cond")
    return next(p for p in header.phis() if fragment in p.name)


class TestChainsThroughPhis:
    def test_without_context_phis_terminate(self, minmax_module):
        fn = minmax_module.function("main")
        hi_phi = _header_phi(fn, "hi")
        update, _ = next(
            (v, b) for v, b in hi_phi.incomings if b.name != "entry"
        )
        # the update is the if-merge phi; with no loop context the chain stops
        assert isinstance(update, Phi)
        chain = producer_chain(update)
        assert chain == []

    def test_with_context_merge_phi_is_in_chain(self, minmax_module):
        fn = minmax_module.function("main")
        li = LoopInfo.compute(fn)
        headers = {id(l.header) for l in li.loops}
        hi_phi = _header_phi(fn, "hi")
        update, _ = next(
            (v, b) for v, b in hi_phi.incomings if b.name != "entry"
        )
        chain = producer_chain(update, header_blocks=headers)
        assert update in chain  # the merge phi itself is duplicable

    def test_header_phis_still_terminate_with_context(self, minmax_module):
        fn = minmax_module.function("main")
        li = LoopInfo.compute(fn)
        headers = {id(l.header) for l in li.loops}
        i_phi = _header_phi(fn, "i")
        # the induction update i+1 depends on the header phi; the chain must
        # contain the add but not the header phi (it is the recurrence root)
        update, _ = next(
            (v, b) for v, b in i_phi.incomings if b.name != "entry"
        )
        chain = producer_chain(update, header_blocks=headers)
        assert update in chain
        assert i_phi not in chain

    def test_chain_order_is_defs_before_uses(self, minmax_module):
        fn = minmax_module.function("main")
        li = LoopInfo.compute(fn)
        headers = {id(l.header) for l in li.loops}
        hi_phi = _header_phi(fn, "hi")
        update, _ = next(
            (v, b) for v, b in hi_phi.incomings if b.name != "entry"
        )
        chain = producer_chain(update, header_blocks=headers)
        seen = set()
        for instr in chain:
            for op in instr.operands:
                if any(op is c for c in chain):
                    assert id(op) in seen, "operand appears after its user"
            seen.add(id(instr))
