"""Unit and property tests for value profiling (paper Algorithms 1 and 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling import (
    FrequentRange,
    InstructionProfile,
    OnlineHistogram,
    ProfileStore,
    collect_profiles,
    compact_range,
)
from tests.conftest import build_sum_loop


class TestOnlineHistogram:
    def test_point_values_stay_exact_under_budget(self):
        h = OnlineHistogram(5)
        for v in [1, 2, 3, 1, 2, 1]:
            h.add(v)
        assert h.total == 6
        assert sorted(h.as_tuples()) == [(1, 1, 3), (2, 2, 2), (3, 3, 1)]

    def test_merges_closest_bins_when_full(self):
        h = OnlineHistogram(3)
        for v in [0, 10, 11, 100]:
            h.add(v)
        # 10 and 11 are the closest pair -> merged
        assert (10, 11, 2) in h.as_tuples()
        assert len(h) == 3

    def test_existing_bin_absorbs_in_range_value(self):
        h = OnlineHistogram(3)
        for v in [0, 10, 11, 100]:
            h.add(v)
        h.add(10.5)  # falls inside merged [10, 11]
        assert (10, 11, 3) in h.as_tuples()

    def test_min_max(self):
        h = OnlineHistogram(4)
        for v in [5, -3, 12]:
            h.add(v)
        assert h.min == -3 and h.max == 12

    def test_max_bin(self):
        h = OnlineHistogram(4)
        for v in [1, 2, 2, 2, 3]:
            h.add(v)
        assert tuple(h.max_bin()) == (2, 2, 3)

    def test_requires_two_bins(self):
        with pytest.raises(ValueError):
            OnlineHistogram(1)

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_invariants(self, values):
        """Property: bin budget respected, total preserved, bins sorted and
        disjoint, every inserted value inside some bin."""
        h = OnlineHistogram(5)
        for v in values:
            h.add(v)
        bins = h.as_tuples()
        assert len(bins) <= 5
        assert sum(c for _, _, c in bins) == len(values)
        for (lb, rb, _), (lb2, rb2, _) in zip(bins, bins[1:]):
            assert lb <= rb
            assert rb < lb2  # sorted, non-overlapping
        for v in values:
            assert any(lb <= v <= rb for lb, rb, _ in bins)


class TestCompactRange:
    def _hist(self, pairs):
        h = OnlineHistogram(len(pairs) + 1)
        from repro.profiling.histogram import Bin

        h.bins = [Bin(lb, rb, c) for lb, rb, c in pairs]
        h.total = sum(c for _, _, c in pairs)
        return h

    def test_empty_histogram(self):
        assert compact_range(OnlineHistogram(5), 10) is None

    def test_seed_is_max_frequency_bin(self):
        h = self._hist([(0, 1, 2), (10, 11, 50), (20, 21, 3)])
        fr = compact_range(h, range_threshold=0.5)
        assert fr.lo == 10 and fr.hi == 11 and fr.count == 50

    def test_grows_toward_heavier_neighbour(self):
        h = self._hist([(0, 1, 20), (10, 11, 50), (20, 21, 5)])
        fr = compact_range(h, range_threshold=12)
        assert fr.lo == 0 and fr.hi == 11
        assert fr.count == 70

    def test_respects_threshold(self):
        h = self._hist([(0, 1, 20), (100, 101, 50), (200, 201, 30)])
        fr = compact_range(h, range_threshold=10)
        assert (fr.lo, fr.hi) == (100, 101)

    def test_grows_other_side_when_blocked(self):
        # left neighbour is heavier but too far; right fits
        h = self._hist([(0, 1, 40), (100, 101, 50), (105, 106, 10)])
        fr = compact_range(h, range_threshold=10)
        assert (fr.lo, fr.hi) == (100, 106)
        assert fr.count == 60

    def test_coverage(self):
        h = self._hist([(0, 1, 25), (10, 11, 75)])
        fr = compact_range(h, range_threshold=1)
        assert fr.coverage == pytest.approx(0.75)

    @given(st.lists(st.integers(min_value=-500, max_value=500), min_size=2, max_size=100),
           st.integers(min_value=1, max_value=1000))
    @settings(max_examples=50)
    def test_range_properties(self, values, threshold):
        h = OnlineHistogram(5)
        for v in values:
            h.add(v)
        fr = compact_range(h, threshold)
        assert fr is not None
        assert fr.lo <= fr.hi
        assert 0 < fr.count <= len(values)
        assert 0 < fr.coverage <= 1.0
        # the range contains at least the heaviest bin
        heavy = h.max_bin()
        assert fr.lo <= heavy.lb and heavy.rb <= fr.hi


class TestInstructionProfile:
    def _profile(self, values, top_capacity=8):
        class FakeInstr:
            name = "x"

        p = InstructionProfile(FakeInstr(), num_bins=5, top_capacity=top_capacity)
        for v in values:
            p.observe(v)
        return p

    def test_frequent_values(self):
        p = self._profile([3, 3, 3, 7, 7, 1])
        assert p.frequent_values(2) == [(3.0, 3), (7.0, 2)]

    def test_value_coverage(self):
        p = self._profile([3, 3, 3, 7])
        assert p.value_coverage([3.0]) == pytest.approx(0.75)
        assert p.value_coverage([3.0, 7.0]) == 1.0

    def test_top_capacity_respected(self):
        p = self._profile(list(range(100)), top_capacity=4)
        assert len(p.top_values) == 4

    def test_span(self):
        p = self._profile([10, 20, 30])
        assert p.span == 20


class TestCollectProfiles:
    def test_profiles_cover_value_instructions(self, sum_loop):
        module, h = sum_loop
        store = collect_profiles(module, inputs={"src": list(range(16))})
        # the accumulator update is profiled with one sample per iteration
        profile = store.get(h["acc_next"])
        assert profile is not None and profile.count == 16

    def test_pointers_and_bools_not_profiled(self, sum_loop):
        module, h = sum_loop
        store = collect_profiles(module, inputs={"src": list(range(16))})
        assert store.get(h["ptr"]) is None    # gep: pointer
        assert store.get(h["cond"]) is None   # icmp: i1

    def test_store_iteration_and_summary(self, sum_loop):
        module, _ = sum_loop
        store = collect_profiles(module, inputs={"src": list(range(16))})
        assert len(store) == len(list(iter(store)))
        summary = store.summary()
        assert all("count" in row for row in summary.values())
