"""Unit-level tests for the CFCSS signature transform."""

import pytest

from repro.frontend import compile_source
from repro.ir import Alloca, GuardValues, verify_module
from repro.transforms import CfcssPass, protect_control_flow
from repro.transforms.cfcss import _block_signature
from repro.sim import Interpreter


class TestSignatures:
    def test_signatures_distinct_for_small_functions(self):
        sigs = [_block_signature(i) for i in range(64)]
        assert len(set(sigs)) == len(sigs)

    def test_signatures_fit_16_bits(self):
        for i in range(256):
            assert 0 <= _block_signature(i) <= 0xFFFF


class TestTransformShape:
    def _protected(self, src):
        module = compile_source(src)
        result = protect_control_flow(module)
        verify_module(module)
        return module, result

    def test_single_block_function_untouched(self):
        module, result = self._protected(
            "output int out[1]; void main() { out[0] = 1; }"
        )
        assert result.num_guards == 0
        fn = module.function("main")
        assert not any(isinstance(i, Alloca) for i in fn.instructions())

    def test_every_non_entry_block_checked(self):
        module, result = self._protected("""
        output int out[1];
        void main() {
            int s = 0;
            for (int i = 0; i < 4; i++) { s += i; }
            out[0] = s;
        }
        """)
        fn = module.function("main")
        checked_blocks = {
            id(i.parent) for i in fn.instructions() if isinstance(i, GuardValues)
        }
        non_entry = [b for b in fn.blocks if b is not fn.entry]
        assert len(checked_blocks) == len(non_entry)
        assert result.num_blocks_signed == len(non_entry)

    def test_guard_ids_start_at_offset(self):
        module = compile_source(
            "output int out[1]; void main() { if (out[0]) { out[0] = 1; } }"
        )
        result = CfcssPass(next_guard_id=500).run(module)
        ids = [
            i.guard_id
            for fn in module.functions.values()
            for i in fn.instructions()
            if isinstance(i, GuardValues)
        ]
        assert ids and min(ids) == 500
        assert result.next_guard_id == 500 + len(ids)

    def test_multi_function_modules(self):
        module, result = self._protected("""
        output int out[1];
        int f(int x) { if (x > 0) { return x; } return -x; }
        void main() { out[0] = f(-3) + f(3); }
        """)
        interp = Interpreter(module, guard_mode="count")
        r = interp.run()
        assert interp.read_global("out")[0] == 6
        assert r.guard_stats.total_failures == 0

    def test_recursion_with_signatures(self):
        """Each activation keeps its own signature view consistent: the G slot
        is per-function-instance... the slot is an alloca in the frame, so
        recursion is safe."""
        module, _ = self._protected("""
        output int out[1];
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        void main() { out[0] = fib(8); }
        """)
        interp = Interpreter(module, guard_mode="count")
        r = interp.run()
        assert interp.read_global("out")[0] == 21
        assert r.guard_stats.total_failures == 0
