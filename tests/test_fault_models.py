"""Fault-model hierarchy: plan determinism, parity, and key stability.

The load-bearing invariant throughout is *single-bit byte-identity*: the
default model must produce plans, results, cache keys, and obs logs that are
byte-for-byte what the pre-hierarchy code produced, while non-default models
opt in to the extra ``fault_model`` fields everywhere.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import replace

import pytest

from repro.faultinjection.campaign import (
    CampaignConfig,
    draw_plans,
    prepare,
    resolve_fault_model,
    run_campaign,
)
from repro.faultinjection.diskcache import _config_fingerprint, campaign_key
from repro.faultinjection.outcomes import (
    Outcome,
    TrialResult,
    trial_from_record,
    trial_to_record,
)
from repro.obs import events as obs_events
from repro.sim.faults import (
    CHAOS_FAULT_MODEL,
    CONCRETE_FAULT_MODELS,
    FAULT_MODELS,
    InjectionPlan,
    flip_bits_window,
    force_bit,
    get_fault_model,
)
from repro.ir import I32
from repro.workloads import get_workload
from tests.conftest import build_sum_loop

WORKLOAD = "tiff2bw"
SCHEME = "dup"
ALL_MODELS = CONCRETE_FAULT_MODELS + (CHAOS_FAULT_MODEL,)


@pytest.fixture(scope="module")
def prepared_dup():
    """One prepared tiff2bw/dup shared by every campaign in this module.

    Preparation is fault-model independent (compile + protect + golden run),
    so sharing it across models is both sound and what the chaos harness
    itself does.
    """
    return prepare(get_workload(WORKLOAD), SCHEME, CampaignConfig(seed=5))


class TestFlipHelpers:
    def test_window_flip(self):
        # bits 0..3 of zero -> 0b1111
        assert flip_bits_window(I32, 0, 0, 4) == 15

    def test_window_wraps_around_the_width(self):
        # start 30 width 4 on i32 -> bits 30, 31, 0, 1
        flipped = flip_bits_window(I32, 0, 30, 4)
        assert flipped & 0xFFFFFFFF == 0xC0000003

    def test_window_is_involutive(self):
        value = 0x1234_5678
        once = flip_bits_window(I32, value, 7, 5)
        assert once != value
        assert flip_bits_window(I32, once, 7, 5) == value

    def test_force_bit(self):
        assert force_bit(I32, 0, 3, 1) == 8
        assert force_bit(I32, 8, 3, 1) == 8  # already stuck: no change
        assert force_bit(I32, 8, 3, 0) == 0

    def test_registry_lookup(self):
        for name in CONCRETE_FAULT_MODELS:
            assert get_fault_model(name).name == name
        with pytest.raises(ValueError, match="unknown fault model"):
            get_fault_model("nope")

    def test_plan_validates_model(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            InjectionPlan(cycle=1, bit=0, model="nope")


class TestPlanDrawing:
    """draw_plans is the single source of campaign randomness."""

    def test_single_bit_plans_match_the_historical_algorithm(
        self, prepared_dup
    ):
        # Inline reimplementation of the pre-hierarchy draw loop: sha256
        # seeding, then (cycle, bit, seed) per trial, nothing else.  The
        # default model must reproduce it draw for draw.
        config = CampaignConfig(trials=32, seed=5)
        key = f"{config.seed}:{WORKLOAD}:{SCHEME}".encode()
        rng = random.Random(
            int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
        )
        expected = [
            (
                rng.randrange(1, prepared_dup.golden_instructions + 1),
                rng.randrange(config.sim.register_flip_bits),
                rng.randrange(1 << 30),
            )
            for _ in range(config.trials)
        ]
        plans = draw_plans(config, prepared_dup)
        assert [(p.cycle, p.bit, p.seed) for p in plans] == expected
        assert all(p.model == "single_bit" for p in plans)

    @pytest.mark.parametrize("model", CONCRETE_FAULT_MODELS[1:])
    def test_fixed_models_add_no_plan_draws(self, prepared_dup, model):
        # Concrete models reuse the single-bit plan stream verbatim; their
        # extra randomness comes from the per-trial seed at injection time.
        config = CampaignConfig(trials=16, seed=5)
        base = draw_plans(config, prepared_dup)
        plans = draw_plans(replace(config, fault_model=model), prepared_dup)
        assert [(p.cycle, p.bit, p.seed) for p in plans] == [
            (p.cycle, p.bit, p.seed) for p in base
        ]
        assert all(p.model == model for p in plans)

    def test_chaos_draws_the_model_after_the_seed(self, prepared_dup):
        config = CampaignConfig(trials=16, seed=5, fault_model="chaos")
        plans = draw_plans(config, prepared_dup)
        again = draw_plans(config, prepared_dup)
        assert [
            (p.cycle, p.bit, p.seed, p.model) for p in plans
        ] == [(p.cycle, p.bit, p.seed, p.model) for p in again]
        assert all(p.model in CONCRETE_FAULT_MODELS for p in plans)
        assert len({p.model for p in plans}) > 1  # actually a mix
        # first trial's (cycle, bit, seed) precede the model draw, so they
        # match the single-bit stream exactly
        base = draw_plans(CampaignConfig(trials=1, seed=5), prepared_dup)
        assert (plans[0].cycle, plans[0].bit, plans[0].seed) == (
            base[0].cycle, base[0].bit, base[0].seed,
        )

    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_MODEL", raising=False)
        assert resolve_fault_model(None) == "single_bit"
        assert resolve_fault_model("burst") == "burst"
        monkeypatch.setenv("REPRO_FAULT_MODEL", "stuck_at")
        assert resolve_fault_model(None) == "stuck_at"
        assert resolve_fault_model("burst") == "burst"  # explicit wins
        monkeypatch.setenv("REPRO_FAULT_MODEL", "typo")
        with pytest.raises(ValueError, match="unknown fault model"):
            resolve_fault_model(None)


class TestCacheKeyStability:
    """The fault model is in cache keys iff it is non-default."""

    def test_default_fingerprint_has_no_fault_model(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_MODEL", raising=False)
        assert "fault_model" not in _config_fingerprint(CampaignConfig())
        assert "fault_model" not in _config_fingerprint(
            CampaignConfig(fault_model="single_bit")
        )
        fp = _config_fingerprint(CampaignConfig(fault_model="burst"))
        assert fp["fault_model"] == "burst"

    def test_explicit_single_bit_keys_like_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_MODEL", raising=False)
        module, _ = build_sum_loop()
        base = campaign_key(module, "w", "s", CampaignConfig())
        assert base == campaign_key(
            module, "w", "s", CampaignConfig(fault_model="single_bit")
        )
        assert base != campaign_key(
            module, "w", "s", CampaignConfig(fault_model="burst")
        )

    def test_env_model_reaches_the_key(self, monkeypatch):
        module, _ = build_sum_loop()
        monkeypatch.delenv("REPRO_FAULT_MODEL", raising=False)
        base = campaign_key(module, "w", "s", CampaignConfig())
        monkeypatch.setenv("REPRO_FAULT_MODEL", "memory_word")
        via_env = campaign_key(module, "w", "s", CampaignConfig())
        assert via_env != base
        assert via_env == campaign_key(
            module, "w", "s", CampaignConfig(fault_model="memory_word")
        )

    def test_execution_knobs_stay_excluded(self, monkeypatch):
        # jobs/obs/checkpoint/snapshot must not fragment the cache for any
        # model — including non-default ones.
        monkeypatch.delenv("REPRO_FAULT_MODEL", raising=False)
        module, _ = build_sum_loop()
        config = CampaignConfig(fault_model="burst")
        base = campaign_key(module, "w", "s", config)
        for variant in (
            replace(config, jobs=8),
            replace(config, obs_log="/tmp/x.jsonl"),
            replace(config, checkpoint="/tmp/x.ckpt"),
            replace(config, snapshot_every=128),
            replace(config, triage=False),
        ):
            assert campaign_key(module, "w", "s", variant) == base

    def test_trial_record_roundtrip(self):
        default = TrialResult(outcome=Outcome.MASKED, injection_cycle=3, bit=1)
        assert "fault_model" not in trial_to_record(default)
        assert trial_from_record(trial_to_record(default)) == default
        burst = replace(default, fault_model="burst")
        rec = trial_to_record(burst)
        assert rec["fault_model"] == "burst"
        assert trial_from_record(rec) == burst


class TestModelCampaignParity:
    """Every model: serial == jobs=2, byte for byte, results and logs."""

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_serial_vs_parallel(self, prepared_dup, tmp_path, model):
        workload = get_workload(WORKLOAD)
        results = {}
        for jobs in (1, 2):
            log = tmp_path / f"{model}-{jobs}.jsonl"
            config = CampaignConfig(
                trials=6, seed=5, jobs=jobs, fault_model=model,
                obs_log=str(log),
            )
            results[jobs] = run_campaign(
                workload, SCHEME, config, prepared=prepared_dup
            )
        assert results[1].to_dict() == results[2].to_dict()
        serial = (tmp_path / f"{model}-1.jsonl").read_bytes()
        parallel = (tmp_path / f"{model}-2.jsonl").read_bytes()
        assert serial == parallel
        stamped = {t.fault_model for t in results[1].trials}
        if model == CHAOS_FAULT_MODEL:
            assert stamped <= set(CONCRETE_FAULT_MODELS)
        else:
            assert stamped == {model}

    def test_single_bit_log_has_no_fault_model_keys(
        self, prepared_dup, tmp_path
    ):
        log = tmp_path / "single.jsonl"
        config = CampaignConfig(trials=6, seed=5, obs_log=str(log))
        result = run_campaign(
            get_workload(WORKLOAD), SCHEME, config, prepared=prepared_dup
        )
        assert "fault_model" not in result.to_dict()
        assert b"fault_model" not in log.read_bytes()

    def test_non_default_log_carries_the_model(self, prepared_dup, tmp_path):
        log = tmp_path / "burst.jsonl"
        config = CampaignConfig(
            trials=4, seed=5, fault_model="burst", obs_log=str(log)
        )
        result = run_campaign(
            get_workload(WORKLOAD), SCHEME, config, prepared=prepared_dup
        )
        assert result.to_dict()["fault_model"] == "burst"
        events, _ = obs_events.read_events(log)
        begin = next(e for e in events if e["event"] == "campaign_begin")
        assert begin["fault_model"] == "burst"
        trials = [e for e in events if e["event"] == "trial"]
        assert trials and all(e["fault_model"] == "burst" for e in trials)

    def test_triage_cannot_affect_non_single_bit_results(self, prepared_dup):
        # Dead-flip triage only proves deadness for one register binding, so
        # it is disabled for multi-site/persistent/memory models — results
        # must be identical with the knob on or off.
        workload = get_workload(WORKLOAD)
        on = run_campaign(
            workload, SCHEME,
            CampaignConfig(trials=6, seed=5, fault_model="burst", triage=True),
            prepared=prepared_dup,
        )
        off = run_campaign(
            workload, SCHEME,
            CampaignConfig(
                trials=6, seed=5, fault_model="burst", triage=False
            ),
            prepared=prepared_dup,
        )
        assert on.to_dict() == off.to_dict()

    @pytest.mark.parametrize("model", CONCRETE_FAULT_MODELS)
    def test_every_trial_classified(self, prepared_dup, model):
        config = CampaignConfig(trials=6, seed=9, fault_model=model)
        result = run_campaign(
            get_workload(WORKLOAD), SCHEME, config, prepared=prepared_dup
        )
        assert len(result.trials) == config.trials
        for trial in result.trials:
            assert isinstance(trial.outcome, Outcome)
            assert trial.fault_model == model

    def test_stuck_at_reapply_state_is_per_trial(self, prepared_dup):
        # Two stuck-at campaigns with the same seed are identical: the
        # persistent-fault bookkeeping must fully reset between trials.
        workload = get_workload(WORKLOAD)
        config = CampaignConfig(trials=8, seed=11, fault_model="stuck_at")
        first = run_campaign(workload, SCHEME, config, prepared=prepared_dup)
        second = run_campaign(workload, SCHEME, config, prepared=prepared_dup)
        assert first.to_dict() == second.to_dict()

    def test_registry_order_is_stable(self):
        # CONCRETE_FAULT_MODELS order is baked into chaos plan drawing;
        # reordering would silently change every chaos campaign.  The
        # memory-hierarchy models append after the register models so older
        # register-only plan streams keep their draws.
        assert CONCRETE_FAULT_MODELS == (
            "single_bit", "double_bit", "burst", "stuck_at", "memory_word",
            "mem_transient", "mem_stuck_at", "cache_line", "stack_frame",
        )
        assert tuple(FAULT_MODELS) == CONCRETE_FAULT_MODELS
