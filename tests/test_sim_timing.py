"""Unit tests for the out-of-order timing model."""

import pytest

from repro.frontend import compile_source
from repro.ir import F64, I32, Constant, IRBuilder, Module
from repro.sim import Interpreter, SimConfig, TimingModel


def time_module(module, inputs=None, config=None):
    timing = TimingModel(config)
    interp = Interpreter(module, config=config, guard_mode="count", timing=timing)
    interp.run(inputs=inputs or {})
    return timing


def build_chain(n, opcode="add", type_=I32):
    """n dependent ops: v = ((1 op 1) op 1) op ..."""
    m = Module()
    fn = m.add_function("main", type_)
    b = IRBuilder(fn.add_block("entry"))
    v = b.binop(opcode, Constant(type_, 1), Constant(type_, 1))
    for _ in range(n - 1):
        v = b.binop(opcode, v, Constant(type_, 1))
    b.ret(v)
    return m


def build_independent(n, opcode="add", type_=I32):
    m = Module()
    fn = m.add_function("main", type_)
    b = IRBuilder(fn.add_block("entry"))
    last = None
    for _ in range(n):
        last = b.binop(opcode, Constant(type_, 1), Constant(type_, 1))
    b.ret(last)
    return m


class TestIssueMechanics:
    def test_dependent_chain_is_latency_bound(self):
        t = time_module(build_chain(100))
        # 100 dependent 1-cycle adds -> ~100 cycles
        assert 95 <= t.cycles <= 110

    def test_independent_ops_are_width_bound(self):
        t = time_module(build_independent(100))
        # 100 independent adds on a 2-wide machine -> ~50 cycles
        assert 45 <= t.cycles <= 60

    def test_float_chain_scales_with_latency(self):
        cfg = SimConfig()
        lat = cfg.latencies["fadd"]
        t = time_module(build_chain(50, "fadd", F64), config=cfg)
        assert t.cycles >= 50 * lat * 0.9

    def test_wider_issue_speeds_up_independent_work(self):
        narrow = time_module(build_independent(200), config=SimConfig(issue_width=1))
        wide = time_module(build_independent(200), config=SimConfig(issue_width=4))
        assert wide.cycles < narrow.cycles / 1.5

    def test_issue_queue_limits_runahead(self):
        """A long-latency chain with a tiny window stalls independent work."""
        m = Module()
        fn = m.add_function("main", F64)
        b = IRBuilder(fn.add_block("entry"))
        v = b.binop("fdiv", Constant(F64, 1.0), Constant(F64, 3.0))
        for _ in range(20):
            v = b.binop("fdiv", v, Constant(F64, 3.0))
        last = v
        for _ in range(200):
            last = b.binop("fadd", Constant(F64, 1.0), Constant(F64, 1.0))
        b.ret(v)
        small = time_module(m, config=SimConfig(issue_queue=4))
        large = time_module(m, config=SimConfig(issue_queue=512))
        assert small.cycles >= large.cycles

    def test_cycles_never_below_bandwidth_floor(self):
        t = time_module(build_independent(500))
        assert t.cycles >= 500 / 2


class TestMemoryAndBranches:
    def test_cache_misses_add_latency(self):
        src = """
        input int data[512];
        output int out[1];
        void main() {
            int s = 0;
            for (int i = 0; i < 512; i++) { s += data[i]; }
            out[0] = s;
        }
        """
        module = compile_source(src)
        t = time_module(module, inputs={"data": [1] * 512})
        assert t.dcache.misses > 0
        assert t.dcache.hits > t.dcache.misses  # 64B lines: 15/16 hit

    def test_branch_predictor_engaged(self):
        src = """
        output int out[1];
        void main() {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 7 < 3) { s += 1; } else { s += 2; }
            }
            out[0] = s;
        }
        """
        module = compile_source(src)
        t = time_module(module)
        assert t.branch_predictor.mispredicts > 0

    def test_protected_module_is_slower(self, ):
        """Any instrumented variant must cost more estimated cycles."""
        from repro.transforms import apply_scheme
        from tests.conftest import build_sum_loop

        data = list(range(16))
        base_module, _ = build_sum_loop()
        base = time_module(base_module, inputs={"src": data})

        dup_module, _ = build_sum_loop()
        apply_scheme(dup_module, "full_dup")
        dup = time_module(dup_module, inputs={"src": data})
        assert dup.cycles > base.cycles
