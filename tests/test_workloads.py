"""Workload integration tests: all 13 benchmarks compile, run, and survive
every protection scheme with unchanged golden outputs."""

import numpy as np
import pytest

from repro.analysis import find_state_variables
from repro.ir import verify_module
from repro.profiling import collect_profiles
from repro.sim import Interpreter
from repro.transforms import ProtectionConfig, apply_scheme
from repro.workloads import (
    BENCHMARK_NAMES,
    all_workloads,
    get_workload,
    table1_rows,
)

ALL = all_workloads()


class TestRegistry:
    def test_thirteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 13

    def test_five_categories_at_least_two_each(self):
        categories = {}
        for w in ALL:
            categories.setdefault(w.category, []).append(w.name)
        assert set(categories) == {"image", "audio", "video", "vision", "ml"}
        assert all(len(v) >= 2 for v in categories.values())

    def test_get_workload(self):
        assert get_workload("kmeans").name == "kmeans"
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == 13
        assert all(r["fidelity"] for r in rows)


@pytest.mark.parametrize("workload", ALL, ids=[w.name for w in ALL])
class TestEveryWorkload:
    def test_compiles_and_verifies(self, workload):
        module = workload.build_module()
        verify_module(module)
        assert module.output_globals()

    def test_has_state_variables(self, workload):
        module = workload.build_module()
        total = sum(len(find_state_variables(f)) for f in module.functions.values())
        assert total >= 2, "soft kernels must have loop-carried state"

    def test_golden_run_is_deterministic(self, workload):
        module = workload.build_module()
        inputs = workload.test_inputs()
        out1, r1 = workload.run(module, inputs)
        out2, r2 = workload.run(module, inputs)
        assert r1.instructions == r2.instructions
        for k in out1:
            assert np.array_equal(out1[k], out2[k])

    def test_train_and_test_inputs_differ(self, workload):
        train = workload.train_inputs()
        test = workload.test_inputs()
        assert any(
            list(train.get(k, [])) != list(test.get(k, [])) for k in train
        )

    def test_self_fidelity_is_identical(self, workload):
        module = workload.build_module()
        out, _ = workload.run(module, workload.test_inputs())
        fid = workload.fidelity(out, out)
        assert fid.identical and fid.acceptable


@pytest.mark.parametrize("workload", ALL, ids=[w.name for w in ALL])
@pytest.mark.parametrize("scheme", ["dup", "dup_valchk", "full_dup"])
class TestProtectionPreservesSemantics:
    def test_golden_outputs_unchanged(self, workload, scheme):
        base_module = workload.build_module()
        base_out, _ = workload.run(base_module, workload.test_inputs())

        module = workload.build_module()
        profiles = None
        if scheme == "dup_valchk":
            profiles = collect_profiles(
                module, inputs=workload.train_inputs(), entry=workload.entry
            )
        apply_scheme(module, scheme, profiles=profiles)
        interp = Interpreter(module, guard_mode="count")
        out, result = workload.run(module, workload.test_inputs(), interpreter=interp)
        for k in base_out:
            assert np.array_equal(base_out[k], out[k]), (
                f"{workload.name}/{scheme}: protected output differs in @{k}"
            )
        if scheme in ("dup", "full_dup"):
            # duplication is deterministic: zero false positives, ever
            assert result.guard_stats.total_failures == 0
