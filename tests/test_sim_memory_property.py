"""Property tests for the memory model (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import F64, I8, I16, I32, I64
from repro.sim import Memory, MemoryTrap

INT_TYPES = {I8: 8, I16: 16, I32: 32, I64: 64}


@st.composite
def typed_writes(draw):
    """A list of non-overlapping-agnostic (offset, type, value) writes."""
    writes = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        type_ = draw(st.sampled_from(list(INT_TYPES)))
        bits = INT_TYPES[type_]
        offset = draw(st.integers(min_value=0, max_value=120))
        value = draw(st.integers(min_value=-(1 << (bits - 1)),
                                 max_value=(1 << (bits - 1)) - 1))
        writes.append((offset, type_, value))
    return writes


class TestMemoryProperties:
    @given(typed_writes())
    @settings(max_examples=60)
    def test_last_write_wins(self, writes):
        """After a sequence of writes, reading back each location returns the
        value of the last write that fully covers it (checked for writes with
        no later overlap)."""
        mem = Memory()
        seg = mem.map_segment("s", 128)
        for offset, type_, value in writes:
            mem.store(type_, seg.base + offset, value)

        for i, (offset, type_, value) in enumerate(writes):
            size = type_.size_bytes
            overlapped = any(
                later_off < offset + size and offset < later_off + later_t.size_bytes
                for later_off, later_t, _ in writes[i + 1:]
            )
            if not overlapped:
                assert mem.load(type_, seg.base + offset) == value

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    @settings(max_examples=60)
    def test_i64_round_trip(self, value):
        mem = Memory()
        seg = mem.map_segment("s", 8)
        mem.store(I64, seg.base, value)
        assert mem.load(I64, seg.base) == value

    @given(st.floats(width=64, allow_nan=False))
    @settings(max_examples=60)
    def test_f64_round_trip_exact(self, value):
        mem = Memory()
        seg = mem.map_segment("s", 8)
        mem.store(F64, seg.base, value)
        assert mem.load(F64, seg.base) == value

    @given(st.integers(min_value=1, max_value=(1 << 22)))
    @settings(max_examples=40)
    def test_every_in_bounds_byte_accessible(self, size):
        mem = Memory()
        seg = mem.map_segment("s", size)
        mem.store(I8, seg.base, 1)
        mem.store(I8, seg.base + size - 1, 2)
        assert mem.load(I8, seg.base + size - 1) == 2
        with pytest.raises(MemoryTrap):
            mem.load(I8, seg.base + size)

    @given(st.lists(st.integers(min_value=4, max_value=1 << 16),
                    min_size=2, max_size=8))
    @settings(max_examples=40)
    def test_segments_never_alias(self, sizes):
        mem = Memory()
        segs = [mem.map_segment(f"s{i}", n) for i, n in enumerate(sizes)]
        for i, seg in enumerate(segs):
            mem.store(I32, seg.base, i + 1)
        for i, seg in enumerate(segs):
            assert mem.load(I32, seg.base) == i + 1
