"""Round-trip tests for the textual IR parser."""

import numpy as np
import pytest

from repro.frontend import compile_source
from repro.ir import (
    GuardEq,
    IRParseError,
    module_to_str,
    parse_module,
    verify_module,
)
from repro.profiling import collect_profiles
from repro.sim import Interpreter
from repro.transforms import apply_scheme
from repro.workloads import get_workload
from tests.conftest import build_sum_loop, sum_loop_reference


def round_trip(module):
    parsed = parse_module(module_to_str(module))
    verify_module(parsed)
    return parsed


class TestRoundTrip:
    def test_text_is_fixpoint(self, sum_loop):
        module, _ = sum_loop
        parsed = round_trip(module)
        t1 = module_to_str(parsed)
        t2 = module_to_str(parse_module(t1))
        assert t1 == t2

    def test_execution_identical(self, sum_loop):
        module, h = sum_loop
        parsed = round_trip(module)
        data = [(i * 5) % 37 for i in range(16)]
        r = Interpreter(parsed).run(inputs={"src": data})
        assert r.return_value == sum_loop_reference(data, h["mul"])

    def test_globals_preserve_flags_and_initializers(self):
        src = """
        int tab[3] = { 5, -6, 7 };
        input int a[4];
        output int b[2];
        void main() { b[0] = tab[0] + a[0]; b[1] = tab[1]; }
        """
        module = compile_source(src)
        parsed = round_trip(module)
        assert parsed.global_var("a").is_input
        assert parsed.global_var("b").is_output
        assert parsed.global_var("tab").initializer == [5, -6, 7]

    def test_float_module(self):
        src = """
        input float x[4];
        output float y[4];
        void main() {
            for (int i = 0; i < 4; i++) { y[i] = sqrt(x[i]) * 2.5; }
        }
        """
        module = compile_source(src)
        parsed = round_trip(module)
        interp = Interpreter(parsed)
        interp.run(inputs={"x": [1.0, 4.0, 9.0, 16.0]})
        assert interp.read_global("y") == [2.5, 5.0, 7.5, 10.0]

    def test_protected_module_guard_ids_preserved(self, sum_loop):
        module, _ = sum_loop
        apply_scheme(module, "dup")
        parsed = round_trip(module)
        original_ids = sorted(
            i.guard_id for f in module.functions.values()
            for i in f.instructions() if isinstance(i, GuardEq)
        )
        parsed_ids = sorted(
            i.guard_id for f in parsed.functions.values()
            for i in f.instructions() if isinstance(i, GuardEq)
        )
        assert parsed_ids == original_ids

    def test_shadow_markers_preserved(self, sum_loop):
        module, _ = sum_loop
        apply_scheme(module, "dup")
        parsed = round_trip(module)
        n_shadows = sum(
            1 for f in parsed.functions.values()
            for i in f.instructions() if i.is_shadow
        )
        assert n_shadows > 0

    def test_value_checked_module(self, sum_loop):
        module, _ = sum_loop
        data = list(range(16))
        profiles = collect_profiles(module, inputs={"src": data})
        from repro.transforms import ProtectionConfig

        apply_scheme(module, "dup_valchk", profiles=profiles,
                     config=ProtectionConfig(min_profile_samples=8))
        parsed = round_trip(module)
        r1 = Interpreter(module, guard_mode="count").run(inputs={"src": data})
        r2 = Interpreter(parsed, guard_mode="count").run(inputs={"src": data})
        assert r1.return_value == r2.return_value
        assert r1.guard_stats.evaluations == r2.guard_stats.evaluations

    def test_multi_function_module_with_calls(self):
        src = """
        output int out[1];
        int square(int x) { return x * x; }
        int twice(int x) { return square(x) + square(x); }
        void main() { out[0] = twice(6); }
        """
        parsed = round_trip(compile_source(src))
        interp = Interpreter(parsed)
        interp.run()
        assert interp.read_global("out")[0] == 72

    @pytest.mark.parametrize("name", ["g721enc", "tiff2bw", "h264dec"])
    def test_workload_round_trips(self, name):
        w = get_workload(name)
        module = w.build_module()
        parsed = round_trip(module)
        out1, _ = w.run(module, w.test_inputs())
        interp = Interpreter(parsed)
        out2, _ = w.run(parsed, w.test_inputs(), interpreter=interp)
        for k in out1:
            assert np.array_equal(out1[k], out2[k])


class TestParseErrors:
    def test_undefined_value(self):
        text = """
define i32 @main() {
entry:
  ret %nope
}
"""
        with pytest.raises(IRParseError, match="undefined value"):
            parse_module(text)

    def test_unknown_instruction(self):
        text = """
define void @main() {
entry:
  frobnicate i32 1
  ret void
}
"""
        with pytest.raises(IRParseError, match="unknown instruction"):
            parse_module(text)

    def test_instruction_outside_block(self):
        text = """
define void @main() {
  ret void
}
"""
        with pytest.raises(IRParseError, match="outside a block"):
            parse_module(text)
