"""Smoke tests keeping the examples runnable.

The two fast examples run on every test invocation; the longer ones
(campaign sweeps) only run when REPRO_RUN_SLOW_EXAMPLES is set, but their
argument parsing and imports are always exercised.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

RUN_SLOW = bool(os.environ.get("REPRO_RUN_SLOW_EXAMPLES"))


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "state variables" in out
        assert "first detection" in out
        assert "60 injections" in out

    def test_custom_kernel(self):
        out = run_example("custom_kernel.py")
        assert "baseline:" in out
        assert "defaults (Opt1+Opt2)" in out
        assert ";dup" in out  # IR dump includes shadow markers


@pytest.mark.skipif(not RUN_SLOW, reason="set REPRO_RUN_SLOW_EXAMPLES=1")
class TestSlowExamples:
    def test_ml_protection(self):
        out = run_example("ml_protection.py", "10", timeout=600)
        assert "Full duplication" in out

    def test_jpeg_fault_demo(self, tmp_path):
        out = run_example("jpeg_fault_demo.py", str(tmp_path), timeout=600)
        assert "(a) fault-free decode" in out
        assert (tmp_path / "a_fault_free.pgm").exists()

    def test_full_protection(self):
        out = run_example("full_protection.py", "10", timeout=600)
        assert "branch-target faults" in out


class TestExampleHygiene:
    def test_all_examples_have_docstrings_and_main(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            text = script.read_text()
            assert text.lstrip().startswith(('"""', "#!")), script.name
            assert '__name__ == "__main__"' in text, script.name
