"""Unit tests for BasicBlock structural operations."""

import pytest

from repro.ir import (
    Br,
    Constant,
    I32,
    IRBuilder,
    Module,
    Phi,
    Ret,
)
from repro.ir.instructions import BinaryOp


def fresh_block():
    m = Module()
    fn = m.add_function("f", I32)
    return fn, fn.add_block("entry")


class TestInsertion:
    def test_append_claims_ownership(self):
        fn, bb = fresh_block()
        instr = BinaryOp("add", Constant(I32, 1), Constant(I32, 2))
        bb.append(instr)
        assert instr.parent is bb
        assert instr.name  # named on insertion

    def test_double_insertion_rejected(self):
        fn, bb = fresh_block()
        instr = BinaryOp("add", Constant(I32, 1), Constant(I32, 2))
        bb.append(instr)
        other = fn.add_block("other")
        with pytest.raises(ValueError, match="already belongs"):
            other.append(instr)

    def test_insert_before_after(self):
        fn, bb = fresh_block()
        a = bb.append(BinaryOp("add", Constant(I32, 1), Constant(I32, 1)))
        c = bb.append(BinaryOp("add", Constant(I32, 3), Constant(I32, 3)))
        b = BinaryOp("add", Constant(I32, 2), Constant(I32, 2))
        bb.insert_after(a, b)
        assert bb.instructions == [a, b, c]
        d = BinaryOp("add", Constant(I32, 0), Constant(I32, 0))
        bb.insert_before(a, d)
        assert bb.instructions[0] is d

    def test_remove_clears_parent(self):
        fn, bb = fresh_block()
        a = bb.append(BinaryOp("add", Constant(I32, 1), Constant(I32, 1)))
        bb.remove(a)
        assert a.parent is None and len(bb) == 0


class TestQueries:
    def test_terminator_detection(self):
        fn, bb = fresh_block()
        assert bb.terminator is None
        bb.append(Ret(Constant(I32, 0)))
        assert isinstance(bb.terminator, Ret)

    def test_phi_region(self):
        fn, bb = fresh_block()
        p1 = Phi(I32, "p1")
        p2 = Phi(I32, "p2")
        bb.insert(0, p1)
        bb.insert(1, p2)
        add = bb.append(BinaryOp("add", Constant(I32, 1), Constant(I32, 1)))
        assert list(bb.phis()) == [p1, p2]
        assert list(bb.non_phi_instructions()) == [add]
        assert bb.first_non_phi_index() == 2

    def test_successors_and_predecessors(self):
        m = Module()
        fn = m.add_function("f", I32)
        a = fn.add_block("a")
        c = fn.add_block("c")
        a.append(Br(c))
        IRBuilder(c).ret(Constant(I32, 0))
        assert a.successors == [c]
        assert c.predecessors == [a]
        assert a.predecessors == []

    def test_iteration_and_len(self):
        fn, bb = fresh_block()
        bb.append(BinaryOp("add", Constant(I32, 1), Constant(I32, 1)))
        bb.append(Ret(Constant(I32, 0)))
        assert len(bb) == 2
        assert len(list(iter(bb))) == 2
        assert "entry" in repr(bb)
