"""Tests for the paper's companion/extension features built in this repo:
checkpoint recovery (Section IV-D), control-flow signature checking (the
branch-target protection the paper defers to), multi-input profiling
(Section V's false-positive mitigation), and the control-fault model.
"""

import numpy as np
import pytest

from repro.faultinjection import (
    CampaignConfig,
    prepare,
    run_with_recovery,
)
from repro.profiling import collect_profiles, collect_profiles_multi
from repro.sim import GuardTrap, InjectionPlan, Interpreter, SimTrap
from repro.transforms import (
    ProtectionConfig,
    apply_scheme,
    compute_check_plans,
    protect_control_flow,
)
from repro.workloads import get_workload
from tests.conftest import build_sum_loop


class TestRecovery:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare(get_workload("g721dec"), "dup", CampaignConfig(trials=1))

    def test_no_fault_no_recovery(self, prepared):
        result = run_with_recovery(prepared.module, prepared.inputs)
        assert not result.recovered and result.replayed_instructions == 0
        for k, v in prepared.golden_outputs.items():
            assert np.array_equal(v, result.outputs[k])

    def test_detection_recovers_to_golden(self, prepared):
        recovered_any = False
        for seed in range(30):
            plan = InjectionPlan(cycle=5000, bit=seed % 31, seed=seed)
            result = run_with_recovery(
                prepared.module, prepared.inputs, plan,
                checkpoint_interval=10_000,
                disabled_guards=set(prepared.noisy_guards),
            )
            if result.recovered:
                recovered_any = True
                assert result.detection_cycle is not None
                assert result.replayed_instructions > 0
                for k, v in prepared.golden_outputs.items():
                    assert np.array_equal(v, result.outputs[k])
                break
        assert recovered_any, "no injection triggered a recovery in the sweep"

    def test_finer_checkpoints_replay_less(self, prepared):
        def replay_cost(interval):
            for seed in range(30):
                plan = InjectionPlan(cycle=20_000, bit=seed % 31, seed=seed)
                r = run_with_recovery(
                    prepared.module, prepared.inputs, plan,
                    checkpoint_interval=interval,
                    disabled_guards=set(prepared.noisy_guards),
                )
                if r.recovered:
                    return r.replayed_instructions
            return None

        fine = replay_cost(1_000)
        coarse = replay_cost(1_000_000)
        assert fine is not None and coarse is not None
        assert fine < coarse

    def test_bad_interval_rejected(self, prepared):
        with pytest.raises(ValueError):
            run_with_recovery(prepared.module, prepared.inputs, checkpoint_interval=0)


class TestControlFaults:
    def test_control_fault_lands(self, sum_loop):
        module, _ = sum_loop
        interp = Interpreter(module)
        plan = InjectionPlan(cycle=40, bit=0, seed=3, kind="control")
        try:
            interp.run(inputs={"src": list(range(16))}, injection=plan,
                       max_instructions=100_000)
        except SimTrap:
            pass
        record = interp.injection_record
        assert record is not None and record.landed
        assert record.value_name == "<branch-target>"

    def test_control_faults_cause_visible_damage(self, sum_loop):
        module, _ = sum_loop
        data = list(range(16))
        golden = Interpreter(module).run(inputs={"src": data}).return_value
        visible = 0
        for seed in range(20):
            interp = Interpreter(module)
            plan = InjectionPlan(cycle=30 + seed, bit=0, seed=seed, kind="control")
            try:
                r = interp.run(inputs={"src": data}, injection=plan,
                               max_instructions=100_000)
                visible += r.return_value != golden
            except SimTrap:
                visible += 1
        assert visible > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown injection kind"):
            InjectionPlan(cycle=1, bit=0, kind="thermal")


class TestCfcss:
    def test_fault_free_run_is_clean(self):
        w = get_workload("g721dec")
        module = w.build_module()
        result = protect_control_flow(module)
        assert result.num_guards > 0
        interp = Interpreter(module, guard_mode="count")
        out, run = w.run(module, w.test_inputs(), interpreter=interp)
        assert run.guard_stats.total_failures == 0

    def test_outputs_unchanged(self):
        w = get_workload("tiff2bw")
        base = w.build_module()
        base_out, _ = w.run(base, w.test_inputs())
        module = w.build_module()
        protect_control_flow(module)
        out, _ = w.run(module, w.test_inputs(),
                       interpreter=Interpreter(module, guard_mode="count"))
        for k in base_out:
            assert np.array_equal(base_out[k], out[k])

    def test_detects_branch_target_faults(self):
        w = get_workload("g721dec")
        module = w.build_module()
        protect_control_flow(module)
        inputs = w.test_inputs()
        detected = escaped = 0
        golden_interp = Interpreter(module, guard_mode="count")
        golden_interp.run(inputs=inputs)
        golden = golden_interp.read_global("audio")
        for seed in range(25):
            interp = Interpreter(module, guard_mode="detect")
            plan = InjectionPlan(cycle=2000 + seed * 997, bit=0, seed=seed,
                                 kind="control")
            try:
                interp.run(inputs=inputs, injection=plan, max_instructions=2_000_000)
            except GuardTrap:
                detected += 1
                continue
            except SimTrap:
                continue
            if interp.read_global("audio") != golden:
                escaped += 1
        assert detected > escaped
        assert detected >= 15  # signature checking catches the vast majority

    def test_composes_with_data_protection(self):
        w = get_workload("tiff2bw")
        module = w.build_module()
        stats = apply_scheme(module, "dup")
        result = protect_control_flow(module, next_guard_id=1000)
        interp = Interpreter(module, guard_mode="count")
        out, run = w.run(module, w.test_inputs(), interpreter=interp)
        assert run.guard_stats.total_failures == 0
        assert result.num_guards > 0 and stats.num_eq_guards > 0


class TestMultiInputProfiling:
    def test_combined_ranges_cover_all_inputs(self, sum_loop):
        module, h = sum_loop
        small = {"src": [1] * 16}
        large = {"src": [1000] * 16}
        combined = collect_profiles_multi(module, [small, large])
        profile = combined.get(h["acc_next"])
        assert profile is not None
        assert profile.count == 32
        assert profile.histogram.max > 1000  # saw the large input's values

    def test_requires_inputs(self, sum_loop):
        module, _ = sum_loop
        with pytest.raises(ValueError):
            collect_profiles_multi(module, [])

    def test_multi_input_checks_do_not_misfire(self):
        """Checks trained on both inputs never fire on either input."""
        w = get_workload("kmeans")
        module = w.build_module()
        store = collect_profiles_multi(
            module, [w.train_inputs(), w.test_inputs()]
        )
        config = ProtectionConfig()
        apply_scheme(module, "dup_valchk", profiles=store, config=config)
        for inputs in (w.train_inputs(), w.test_inputs()):
            interp = Interpreter(module, guard_mode="count")
            _, run = w.run(module, inputs, interpreter=interp)
            assert run.guard_stats.total_failures == 0
