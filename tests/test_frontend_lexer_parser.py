"""Unit tests for the SCL lexer and parser."""

import pytest

from repro.frontend import LexError, ParseError, parse, tokenize
from repro.frontend import astnodes as ast


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("int x = 42;")
        kinds = [(t.kind, t.text) for t in toks]
        assert kinds == [
            ("keyword", "int"), ("ident", "x"), ("op", "="),
            ("int_lit", "42"), ("op", ";"), ("eof", ""),
        ]

    def test_hex_literal(self):
        tok = tokenize("0xFF")[0]
        assert tok.kind == "int_lit" and tok.value == 255

    def test_float_literals(self):
        assert tokenize("3.25")[0].value == 3.25
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-1")[0].value == 0.25

    def test_multi_char_operators(self):
        toks = tokenize("a <<= b >>= c == d != e <= f >= g && h || i")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||"]

    def test_line_comment(self):
        toks = tokenize("a // comment\nb")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_block_comment(self):
        toks = tokenize("a /* multi\nline */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("/* oops")

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a $ b")

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_malformed_hex(self):
        with pytest.raises(LexError, match="hex"):
            tokenize("0x")


class TestParserTopLevel:
    def test_global_declarations(self):
        prog = parse("input int a[4]; output float b[2]; int c[8];")
        assert [g.name for g in prog.globals] == ["a", "b", "c"]
        assert prog.globals[0].is_input
        assert prog.globals[1].is_output
        assert prog.globals[1].type.base == "float"

    def test_global_initializer(self):
        prog = parse("int t[3] = { 1, -2, 3 };")
        assert prog.globals[0].initializer == [1, -2, 3]

    def test_const_declaration(self):
        prog = parse("const int N = 5; const float X = -1.5;")
        assert prog.consts[0].value == 5
        assert prog.consts[1].value == -1.5

    def test_function_with_params(self):
        prog = parse("int f(int a, float* p) { return a; }")
        fn = prog.functions[0]
        assert fn.name == "f"
        assert fn.params[1].type.is_pointer

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("input int a[4]")

    def test_void_global_rejected(self):
        with pytest.raises(ParseError):
            parse("void g[4];")


class TestParserStatements:
    def _body(self, code: str):
        return parse(f"void main() {{ {code} }}").functions[0].body

    def test_decl_with_init(self):
        (stmt,) = self._body("int x = 3;")
        assert isinstance(stmt, ast.DeclStmt) and stmt.init.value == 3

    def test_local_array(self):
        (stmt,) = self._body("float buf[16];")
        assert stmt.array_size == 16

    def test_compound_assignment(self):
        (stmt,) = self._body("x += 2;")
        assert isinstance(stmt, ast.AssignStmt) and stmt.op == "+"

    def test_increment_decrement(self):
        inc, dec = self._body("x++; y--;")
        assert inc.op == "+" and dec.op == "-"

    def test_if_else(self):
        (stmt,) = self._body("if (x) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_single_statement_bodies(self):
        (stmt,) = self._body("if (x) y = 1;")
        assert len(stmt.then_body) == 1

    def test_for_loop_parts(self):
        (stmt,) = self._body("for (int i = 0; i < 8; i++) { s += i; }")
        assert isinstance(stmt.init, ast.DeclStmt)
        assert isinstance(stmt.cond, ast.BinaryExpr)
        assert isinstance(stmt.step, ast.AssignStmt)

    def test_for_loop_empty_parts(self):
        (stmt,) = self._body("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_break_continue(self):
        (stmt,) = self._body("while (1) { if (x) break; continue; }")
        assert isinstance(stmt, ast.WhileStmt)

    def test_return_forms(self):
        ret_val, = self._body("return 3;")
        assert ret_val.value.value == 3
        ret_void, = parse("void f() { return; }").functions[0].body
        assert ret_void.value is None


class TestParserExpressions:
    def _expr(self, code: str):
        (stmt,) = parse(f"void main() {{ x = {code}; }}").functions[0].body
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert e.op == "+" and e.rhs.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = self._expr("a << 2 < b")
        assert e.op == "<" and e.lhs.op == "<<"

    def test_left_associativity(self):
        e = self._expr("a - b - c")
        assert e.op == "-" and e.lhs.op == "-"

    def test_parentheses(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op == "*" and e.lhs.op == "+"

    def test_ternary(self):
        e = self._expr("a ? b : c")
        assert isinstance(e, ast.TernaryExpr)

    def test_cast_vs_parenthesized(self):
        cast = self._expr("(int)y")
        assert isinstance(cast, ast.CastExpr)
        paren = self._expr("(y)")
        assert isinstance(paren, ast.NameRef)

    def test_unary_operators(self):
        e = self._expr("-a + !b + ~c")
        flat = []

        def walk(n):
            if isinstance(n, ast.UnaryExpr):
                flat.append(n.op)
            for attr in ("lhs", "rhs", "operand"):
                child = getattr(n, attr, None)
                if child is not None:
                    walk(child)

        walk(e)
        assert set(flat) == {"-", "!", "~"}

    def test_call_and_index(self):
        e = self._expr("f(a, b[2])")
        assert isinstance(e, ast.CallExpr)
        assert isinstance(e.args[1], ast.IndexExpr)

    def test_logical_operators(self):
        e = self._expr("a && b || c")
        assert e.op == "||" and e.lhs.op == "&&"

    def test_bad_expression(self):
        with pytest.raises(ParseError, match="expected expression"):
            parse("void main() { x = ; }")

    def test_assignment_to_literal_rejected(self):
        with pytest.raises(ParseError, match="assignment target"):
            parse("void main() { 3 = x; }")
