"""Unit tests for repro.ir.instructions."""

import pytest

from repro.ir import (
    F64,
    I1,
    I32,
    PTR,
    VOID,
    Alloca,
    BasicBlock,
    BinaryOp,
    Br,
    Cast,
    CondBr,
    Constant,
    FCmp,
    GetElementPtr,
    GuardEq,
    GuardRange,
    GuardValues,
    ICmp,
    IntrinsicCall,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)


def c32(v):
    return Constant(I32, v)


class TestBinaryOp:
    def test_result_type_matches_operands(self):
        add = BinaryOp("add", c32(1), c32(2))
        assert add.type is I32

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp("bogus", c32(1), c32(2))

    def test_int_op_rejects_floats(self):
        with pytest.raises(TypeError):
            BinaryOp("add", Constant(F64, 1.0), Constant(F64, 2.0))

    def test_float_op_rejects_ints(self):
        with pytest.raises(TypeError):
            BinaryOp("fadd", c32(1), c32(2))

    def test_mixed_types_rejected(self):
        with pytest.raises(TypeError):
            BinaryOp("add", c32(1), Constant(I1, 1))


class TestComparisons:
    def test_icmp_produces_i1(self):
        cmp = ICmp("slt", c32(1), c32(2))
        assert cmp.type is I1

    def test_icmp_bad_predicate(self):
        with pytest.raises(ValueError):
            ICmp("lt", c32(1), c32(2))

    def test_fcmp_produces_i1(self):
        cmp = FCmp("olt", Constant(F64, 1.0), Constant(F64, 2.0))
        assert cmp.type is I1

    def test_fcmp_bad_predicate(self):
        with pytest.raises(ValueError):
            FCmp("lt", Constant(F64, 1.0), Constant(F64, 2.0))


class TestSelectAndCast:
    def test_select_requires_bool_condition(self):
        with pytest.raises(TypeError):
            Select(c32(1), c32(2), c32(3))

    def test_select_arm_types_must_match(self):
        with pytest.raises(TypeError):
            Select(Constant(I1, 1), c32(2), Constant(F64, 3.0))

    def test_cast_type(self):
        cast = Cast("sitofp", c32(1), F64)
        assert cast.type is F64

    def test_unknown_cast_rejected(self):
        with pytest.raises(ValueError):
            Cast("resize", c32(1), F64)


class TestMemory:
    def test_alloca_size(self):
        a = Alloca(I32, 16)
        assert a.type is PTR and a.size_bytes == 64

    def test_alloca_rejects_zero(self):
        with pytest.raises(ValueError):
            Alloca(I32, 0)

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            Load(I32, c32(0))

    def test_store_is_void(self):
        a = Alloca(I32)
        s = Store(c32(1), a)
        assert s.type is VOID and not s.has_result

    def test_gep_types(self):
        a = Alloca(I32, 8)
        g = GetElementPtr(a, c32(2), I32)
        assert g.type is PTR and g.elem_size == 4

    def test_gep_rejects_non_integer_index(self):
        a = Alloca(I32, 8)
        with pytest.raises(TypeError):
            GetElementPtr(a, Constant(F64, 1.0), I32)


class TestControlFlow:
    def test_br_successors(self):
        bb = BasicBlock("x")
        br = Br(bb)
        assert br.successors == [bb] and br.is_terminator

    def test_condbr_requires_i1(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        with pytest.raises(TypeError):
            CondBr(c32(1), a, b)

    def test_condbr_replace_successor(self):
        a, b, c = BasicBlock("a"), BasicBlock("b"), BasicBlock("c")
        br = CondBr(Constant(I1, 1), a, b)
        br.replace_successor(a, c)
        assert br.successors == [c, b]

    def test_ret_with_and_without_value(self):
        assert Ret().value is None
        assert Ret(c32(3)).value.value == 3
        assert Ret().successors == []


class TestPhi:
    def test_incoming_management(self):
        bb1, bb2 = BasicBlock("a"), BasicBlock("b")
        phi = Phi(I32, "p")
        phi.add_incoming(c32(1), bb1)
        phi.add_incoming(c32(2), bb2)
        assert phi.incoming_for(bb1).value == 1
        assert phi.incoming_for(bb2).value == 2

    def test_incoming_type_checked(self):
        phi = Phi(I32, "p")
        with pytest.raises(TypeError):
            phi.add_incoming(Constant(F64, 1.0), BasicBlock("a"))

    def test_missing_incoming_raises(self):
        phi = Phi(I32, "p")
        with pytest.raises(KeyError):
            phi.incoming_for(BasicBlock("a"))

    def test_set_incoming_value(self):
        bb = BasicBlock("a")
        phi = Phi(I32, "p")
        phi.add_incoming(c32(1), bb)
        phi.set_incoming_value(bb, c32(9))
        assert phi.incoming_for(bb).value == 9

    def test_remove_incoming_reindexes_uses(self):
        bb1, bb2 = BasicBlock("a"), BasicBlock("b")
        phi = Phi(I32, "p")
        v1, v2 = c32(1), c32(2)
        phi.add_incoming(v1, bb1)
        phi.add_incoming(v2, bb2)
        phi.remove_incoming(bb1)
        assert phi.incomings == [(v2, bb2)]
        assert (phi, 0) in v2.uses


class TestGuards:
    def test_guard_eq_type_check(self):
        with pytest.raises(TypeError):
            GuardEq(c32(1), Constant(F64, 1.0))

    def test_guard_eq_properties(self):
        g = GuardEq(c32(1), c32(2), guard_id=7)
        assert g.guard_id == 7 and g.is_guard and not g.has_result
        assert g.original.value == 1 and g.shadow.value == 2

    def test_guard_values_arity(self):
        with pytest.raises(ValueError):
            GuardValues(c32(1), [])
        with pytest.raises(ValueError):
            GuardValues(c32(1), [c32(1), c32(2), c32(3)])

    def test_guard_values_expected(self):
        g = GuardValues(c32(1), [c32(5), c32(9)])
        assert [c.value for c in g.expected] == [5, 9]

    def test_guard_range_bounds(self):
        g = GuardRange(c32(1), c32(0), c32(10))
        assert g.lo.value == 0 and g.hi.value == 10

    def test_guard_range_type_check(self):
        with pytest.raises(TypeError):
            GuardRange(c32(1), Constant(F64, 0.0), c32(10))


class TestIntrinsics:
    def test_result_type_follows_first_arg(self):
        call = IntrinsicCall("sqrt", [Constant(F64, 4.0)])
        assert call.type is F64

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            IntrinsicCall("min", [c32(1)])

    def test_unknown_intrinsic(self):
        with pytest.raises(ValueError):
            IntrinsicCall("cbrt", [c32(1)])


class TestEraseAndOperands:
    def test_erase_with_uses_fails(self):
        add = BinaryOp("add", c32(1), c32(2))
        BinaryOp("add", add, add)
        with pytest.raises(RuntimeError, match="still has"):
            add.erase()

    def test_set_operand_updates_uses(self):
        x, y = c32(1), c32(2)
        add = BinaryOp("add", x, x)
        add.set_operand(0, y)
        assert add.operands == (y, x)
        assert (add, 0) in y.uses
        assert (add, 0) not in x.uses and (add, 1) in x.uses

    def test_drop_all_references(self):
        x = c32(1)
        add = BinaryOp("add", x, x)
        add.drop_all_references()
        assert x.uses == [] and add.operands == ()
