"""Unit tests for value-check planning, Optimization 1, and check insertion."""

import pytest

from repro.frontend import compile_source
from repro.ir import GuardRange, GuardValues, verify_module
from repro.profiling import InstructionProfile, collect_profiles
from repro.sim import Interpreter
from repro.transforms import (
    ProtectionConfig,
    apply_optimization1,
    compute_check_plans,
    insert_checks,
    plan_check,
)
from tests.conftest import build_sum_loop


def make_profile(instr, values):
    p = InstructionProfile(instr, num_bins=5)
    for v in values:
        p.observe(v)
    return p


class TestPlanCheck:
    def _config(self, **kw):
        defaults = dict(min_profile_samples=8, min_value_check_samples=16)
        defaults.update(kw)
        return ProtectionConfig(**defaults)

    def test_single_value_plan(self, sum_loop):
        _, h = sum_loop
        profile = make_profile(h["scaled"], [42] * 100)
        plan = plan_check(h["scaled"], profile, self._config())
        assert plan.kind == "single" and plan.values == [42.0]

    def test_double_value_plan(self, sum_loop):
        _, h = sum_loop
        profile = make_profile(h["scaled"], [1] * 60 + [9] * 40)
        plan = plan_check(h["scaled"], profile, self._config())
        assert plan.kind == "double" and set(plan.values) == {1.0, 9.0}

    def test_range_plan_pads_bounds(self, sum_loop):
        _, h = sum_loop
        profile = make_profile(h["scaled"], list(range(100, 200)))
        plan = plan_check(h["scaled"], profile, self._config())
        assert plan.kind == "range"
        assert plan.lo < 100 and plan.hi > 199

    def test_too_few_samples_rejected(self, sum_loop):
        _, h = sum_loop
        profile = make_profile(h["scaled"], [1, 2, 3])
        assert plan_check(h["scaled"], profile, self._config()) is None

    def test_two_values_cover_all_gives_double(self, sum_loop):
        _, h = sum_loop
        # two values cover every sample: the Fig. 6b two-value form applies
        profile = make_profile(h["scaled"], [5] * 99 + [6])
        plan = plan_check(h["scaled"], profile, self._config())
        assert plan is not None and plan.kind == "double"

    def test_imperfect_invariant_falls_to_range(self, sum_loop):
        _, h = sum_loop
        # three distinct values: neither Fig. 6a nor 6b applies -> range check
        profile = make_profile(h["scaled"], [5] * 98 + [6, 7])
        plan = plan_check(h["scaled"], profile, self._config())
        assert plan is not None and plan.kind == "range"

    def test_wide_ranges_rejected(self, sum_loop):
        _, h = sum_loop
        values = list(range(0, 10**8, 10**6))  # span far over int_range_limit
        profile = make_profile(h["scaled"], values * 2)
        config = self._config(coverage_threshold=0.5)
        assert plan_check(h["scaled"], profile, config) is None

    def test_load_not_checked_by_default(self, sum_loop):
        _, h = sum_loop
        profile = make_profile(h["loaded"], [7] * 100)
        assert plan_check(h["loaded"], profile, self._config()) is None
        plan = plan_check(h["loaded"], profile, self._config(check_loads=True))
        assert plan is not None

    def test_bool_never_checked(self, sum_loop):
        _, h = sum_loop
        profile = make_profile(h["cond"], [1] * 100)
        assert plan_check(h["cond"], profile, self._config()) is None


class TestOptimization1:
    def test_upstream_amenable_dropped(self, sum_loop):
        _, h = sum_loop
        config = ProtectionConfig(min_profile_samples=8, min_value_check_samples=16)
        plans = {
            id(h["scaled"]): plan_check(
                h["scaled"], make_profile(h["scaled"], list(range(50))), config
            ),
            id(h["acc_next"]): plan_check(
                h["acc_next"], make_profile(h["acc_next"], list(range(50))), config
            ),
        }
        assert all(p is not None for p in plans.values())
        kept = apply_optimization1(plans)
        # scaled feeds acc_next (deeper); only acc_next keeps its check
        assert id(h["acc_next"]) in kept
        assert id(h["scaled"]) not in kept

    def test_forced_plans_survive(self, sum_loop):
        _, h = sum_loop
        config = ProtectionConfig(min_profile_samples=8, min_value_check_samples=16)
        plans = {
            id(h["scaled"]): plan_check(
                h["scaled"], make_profile(h["scaled"], list(range(50))), config
            ),
            id(h["acc_next"]): plan_check(
                h["acc_next"], make_profile(h["acc_next"], list(range(50))), config
            ),
        }
        plans[id(h["scaled"])].forced = True
        kept = apply_optimization1(plans)
        assert id(h["scaled"]) in kept

    def test_loop_carried_cycle_does_not_self_eliminate(self):
        """Two amenable values feeding each other through a phi must not both
        be dropped (phi edges are excluded from Opt 1 reachability)."""
        src = """
        input int data[64];
        output int out[1];
        void main() {
            int a = 1;
            for (int i = 0; i < 64; i++) {
                a = (a * 3 + data[i]) % 1000;
            }
            out[0] = a;
        }
        """
        module = compile_source(src)
        profiles = collect_profiles(module, inputs={"data": [5] * 64})
        config = ProtectionConfig(min_profile_samples=8)
        plans = compute_check_plans(module, profiles, config)
        kept = apply_optimization1(plans)
        assert kept  # something survives


class TestInsertChecks:
    def test_checks_materialised_and_verified(self, sum_loop):
        module, h = sum_loop
        profiles = collect_profiles(module, inputs={"src": list(range(16))})
        config = ProtectionConfig(min_profile_samples=8, min_value_check_samples=16)
        plans = compute_check_plans(module, profiles, config)
        assert plans
        next_id = insert_checks(module, plans, next_guard_id=10)
        verify_module(module)
        guards = [
            i for i in h["fn"].instructions()
            if isinstance(i, (GuardRange, GuardValues))
        ]
        assert len(guards) == len(plans)
        assert next_id == 10 + len(plans)

    def test_checks_pass_on_profiled_input(self, sum_loop):
        module, _ = sum_loop
        data = list(range(16))
        profiles = collect_profiles(module, inputs={"src": data})
        config = ProtectionConfig(min_profile_samples=8)
        plans = compute_check_plans(module, profiles, config)
        insert_checks(module, plans)
        result = Interpreter(module, guard_mode="count").run(inputs={"src": data})
        assert result.guard_stats.total_failures == 0
        assert result.guard_stats.evaluations > 0

    def test_checks_catch_wild_values(self, sum_loop):
        """A huge corruption of a checked value must fail its range check."""
        from repro.sim import GuardTrap, InjectionPlan

        module, _ = sum_loop
        data = [3] * 16
        profiles = collect_profiles(module, inputs={"src": data})
        config = ProtectionConfig(min_profile_samples=8)
        plans = compute_check_plans(module, profiles, config)
        insert_checks(module, plans)
        detections = 0
        for seed in range(30):
            interp = Interpreter(module, guard_mode="detect")
            try:
                interp.run(
                    inputs={"src": data},
                    injection=InjectionPlan(cycle=40, bit=30, seed=seed),
                )
            except GuardTrap:
                detections += 1
            except Exception:
                pass
        assert detections > 0
