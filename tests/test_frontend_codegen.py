"""Semantic tests for SCL code generation, checked by execution."""

import pytest

from repro.frontend import CodegenError, compile_source
from repro.sim import Interpreter


def run_main(src: str, inputs=None, entry="main"):
    module = compile_source(src)
    interp = Interpreter(module)
    result = interp.run(entry=entry, inputs=inputs or {})
    return interp, result


def eval_expr(expr: str, decls: str = "") -> object:
    """Evaluate one int expression via a tiny main."""
    src = f"""
    output int out[1];
    void main() {{ {decls} out[0] = {expr}; }}
    """
    interp, _ = run_main(src)
    return interp.read_global("out")[0]


class TestArithmetic:
    @pytest.mark.parametrize("expr,expected", [
        ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
        ("7 / 2", 3),
        ("-7 / 2", -3),          # C truncating division
        ("7 % 3", 1),
        ("-7 % 3", -1),          # sign of the dividend
        ("1 << 10", 1024),
        ("-8 >> 1", -4),         # arithmetic shift
        ("0xF0 & 0x3C", 0x30),
        ("0xF0 | 0x0F", 0xFF),
        ("0xFF ^ 0x0F", 0xF0),
        ("~0", -1),
        ("-(3 + 4)", -7),
    ])
    def test_int_expressions(self, expr, expected):
        assert eval_expr(expr) == expected

    def test_i32_wraparound(self):
        assert eval_expr("2147483647 + 1") == -2147483648

    def test_float_to_int_truncation(self):
        assert eval_expr("(int)3.9") == 3
        assert eval_expr("(int)(0.0 - 3.9)") == -3

    def test_mixed_arithmetic_promotes(self):
        assert eval_expr("(int)(3 / 2.0 * 2.0)") == 3

    def test_comparisons_yield_01(self):
        assert eval_expr("3 < 4") == 1
        assert eval_expr("4 < 3") == 0
        assert eval_expr("(3 <= 3) + (3 != 3) + (3 == 3)") == 2

    def test_logical_not(self):
        assert eval_expr("!0 + !5") == 1


class TestControlFlow:
    def test_if_else(self):
        assert eval_expr("x", decls="int x = 0; if (3 > 2) { x = 10; } else { x = 20; }") == 10

    def test_nested_loops(self):
        src = """
        output int out[1];
        void main() {
            int s = 0;
            for (int i = 0; i < 5; i++) {
                for (int j = 0; j <= i; j++) { s += 1; }
            }
            out[0] = s;
        }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 15

    def test_while_with_break(self):
        src = """
        output int out[1];
        void main() {
            int i = 0;
            while (1) {
                i++;
                if (i >= 7) { break; }
            }
            out[0] = i;
        }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 7

    def test_continue_skips(self):
        src = """
        output int out[1];
        void main() {
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i % 2 == 0) { continue; }
                s += i;
            }
            out[0] = s;
        }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 25

    def test_short_circuit_and_protects_division(self):
        src = """
        output int out[1];
        void main() {
            int d = 0;
            if (d != 0 && 10 / d > 1) { out[0] = 1; } else { out[0] = 2; }
        }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 2

    def test_short_circuit_or_protects_division(self):
        src = """
        output int out[1];
        void main() {
            int d = 0;
            if (d == 0 || 10 / d > 1) { out[0] = 1; } else { out[0] = 2; }
        }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 1

    def test_ternary(self):
        assert eval_expr("5 > 3 ? 11 : 22") == 11
        assert eval_expr("5 < 3 ? 11 : 22") == 22

    def test_early_return_drops_dead_code(self):
        src = """
        output int out[1];
        int f() { return 1; out[0] = 99; return 2; }
        void main() { out[0] = f(); }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 1


class TestFunctionsAndArrays:
    def test_function_call_with_conversion(self):
        src = """
        output int out[1];
        float half(float x) { return x / 2.0; }
        void main() { out[0] = (int)half(9); }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 4

    def test_recursion(self):
        src = """
        output int out[1];
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        void main() { out[0] = fib(10); }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 55

    def test_pointer_parameters(self):
        src = """
        input int data[8];
        output int out[1];
        int total(int* p, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += p[i]; }
            return s;
        }
        void main() { out[0] = total(data, 8); }
        """
        interp, _ = run_main(src, inputs={"data": list(range(8))})
        assert interp.read_global("out")[0] == 28

    def test_local_arrays(self):
        src = """
        output int out[1];
        void main() {
            int buf[8];
            for (int i = 0; i < 8; i++) { buf[i] = i * i; }
            int s = 0;
            for (int i = 0; i < 8; i++) { s += buf[i]; }
            out[0] = s;
        }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 140

    def test_global_initializer_used(self):
        src = """
        int tab[4] = { 10, 20, 30, 40 };
        output int out[1];
        void main() { out[0] = tab[1] + tab[3]; }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 60

    def test_const_substitution(self):
        src = """
        const int N = 6;
        output int out[1];
        void main() { out[0] = N * N; }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 36

    def test_builtins(self):
        src = """
        output int out[4];
        void main() {
            out[0] = (int)sqrt(81.0);
            out[1] = abs(-5);
            out[2] = min(3, 7);
            out[3] = max(3, 7);
        }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out") == [9, 5, 3, 7]

    def test_fall_off_end_returns_zero(self):
        src = """
        output int out[1];
        int f() { int x = 1; }
        void main() { out[0] = f() + 5; }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 5


class TestSemanticErrors:
    @pytest.mark.parametrize("src,match", [
        ("void main() { x = 1; }", "undefined variable"),
        ("void main() { int x = 1; int x = 2; }", "redefinition"),
        ("void main() { return 3; }", "void function cannot return"),
        ("int main() { return; }", "must return a value"),
        ("void main() { break; }", "break outside loop"),
        ("void main() { continue; }", "continue outside loop"),
        ("void main() { g(); }", "undefined function"),
        ("int f(int a) { return a; } void main() { f(1, 2); }", "argument"),
        ("void main() { int a[4]; a = 3; }", "not an assignable scalar"),
        ("void main() { int x = 1; x[0] = 2; }", "not indexable"),
        ("input float d[4]; void main() { int x = d[1.5]; }", "index must be an integer"),
        ("void main() { sqrt(1.0, 2.0); }", "expects 1 argument"),
    ])
    def test_errors(self, src, match):
        with pytest.raises(CodegenError, match=match):
            compile_source(src)

    def test_block_scoping(self):
        src = """
        output int out[1];
        void main() {
            int x = 1;
            if (1) { int y = 2; x += y; }
            out[0] = x;
        }
        """
        interp, _ = run_main(src)
        assert interp.read_global("out")[0] == 3

    def test_inner_scope_not_visible_outside(self):
        with pytest.raises(CodegenError, match="undefined variable"):
            compile_source("""
            void main() {
                if (1) { int y = 2; }
                int z = y;
            }
            """)
