"""Unit tests for the state-variable duplication transform."""

import pytest

from repro.frontend import compile_source
from repro.ir import GuardEq, Load, Phi, verify_module
from repro.sim import Interpreter
from repro.transforms import (
    ProtectionConfig,
    clone_instruction,
    duplicate_state_variables,
)
from tests.conftest import build_sum_loop, sum_loop_reference


class TestDuplication:
    def test_shadow_phis_created(self, sum_loop):
        module, h = sum_loop
        result = duplicate_state_variables(module)
        assert len(result.state_variables) == 2
        shadow_phis = [p for p in h["header"].phis() if p.is_shadow]
        assert len(shadow_phis) == 2
        verify_module(module)

    def test_update_chains_cloned(self, sum_loop):
        module, h = sum_loop
        duplicate_state_variables(module)
        shadows = [i for i in h["body"].instructions if i.is_shadow]
        originals = {i.shadow_of for i in shadows}
        assert h["scaled"] in originals and h["acc_next"] in originals

    def test_loads_not_duplicated(self, sum_loop):
        module, h = sum_loop
        duplicate_state_variables(module)
        loads = [i for i in h["fn"].instructions() if isinstance(i, Load)]
        assert len(loads) == 1
        # the shadow of acc_next consumes the *original* load
        shadow_add = next(
            i for i in h["body"].instructions
            if i.is_shadow and i.shadow_of is h["acc_next"]
        )
        assert h["loaded"] in shadow_add.operands

    def test_guards_inserted_in_latch(self, sum_loop):
        module, h = sum_loop
        result = duplicate_state_variables(module)
        guards = [i for i in h["body"].instructions if isinstance(i, GuardEq)]
        assert len(guards) == 2  # one per state variable update
        assert result.num_guards == 2
        # guard sits before the terminator
        assert h["body"].instructions[-1].is_terminator

    def test_guard_ids_unique(self, sum_loop):
        module, _ = sum_loop
        result = duplicate_state_variables(module)
        ids = [
            i.guard_id
            for fn in module.functions.values()
            for i in fn.instructions()
            if isinstance(i, GuardEq)
        ]
        assert len(ids) == len(set(ids))
        assert result.next_guard_id == len(ids)

    def test_semantics_preserved(self, sum_loop):
        module, h = sum_loop
        duplicate_state_variables(module)
        data = [(i * 31) % 113 for i in range(h["n"])]
        result = Interpreter(module).run(inputs={"src": data})
        assert result.return_value == sum_loop_reference(data, h["mul"])
        assert result.guard_stats.total_failures == 0

    def test_shared_chains_cloned_once(self):
        src = """
        input int data[8];
        output int out[2];
        void main() {
            int a = 0;
            int b = 0;
            for (int i = 0; i < 8; i++) {
                int v = data[i] * 3;   // shared producer of both updates
                a += v;
                b ^= v;
            }
            out[0] = a;
            out[1] = b;
        }
        """
        module = compile_source(src)
        duplicate_state_variables(module)
        verify_module(module)
        fn = module.function("main")
        shadows = [i for i in fn.instructions() if i.is_shadow]
        originals = [i.shadow_of for i in shadows if i.shadow_of is not None]
        assert len(originals) == len(set(map(id, originals)))

    def test_merge_phis_duplicated(self):
        """Conditional updates (min/max pattern) must be protected through
        their if-else merge phis."""
        src = """
        input int data[8];
        output int out[1];
        void main() {
            int hi = -999999;
            for (int i = 0; i < 8; i++) {
                if (data[i] > hi) { hi = data[i]; }
            }
            out[0] = hi;
        }
        """
        module = compile_source(src)
        result = duplicate_state_variables(module)
        verify_module(module)
        fn = module.function("main")
        shadow_merge_phis = [
            i for i in fn.instructions()
            if i.is_shadow and isinstance(i, Phi) and isinstance(i.shadow_of, Phi)
        ]
        # at least the hi-merge phi plus the header shadow phis
        assert len(shadow_merge_phis) >= 2
        data = [5, 3, 9, 1, 2, 9, 0, 4]
        interp = Interpreter(module)
        interp.run(inputs={"data": data})
        assert interp.read_global("out")[0] == 9

    def test_all_workload_transforms_verify(self):
        from repro.workloads import all_workloads

        for w in all_workloads()[:4]:
            module = w.build_module()
            duplicate_state_variables(module)
            verify_module(module)


class TestOptimization2:
    def test_chain_terminated_at_amenable_instruction(self, sum_loop):
        from repro.transforms.valuechecks import CheckPlan

        module, h = sum_loop
        # pretend `scaled` is check-amenable
        plans = {id(h["scaled"]): CheckPlan(h["scaled"], "range", lo=0, hi=100)}
        result = duplicate_state_variables(module, check_plans=plans)
        shadows = {i.shadow_of for i in h["body"].instructions if i.is_shadow}
        assert h["scaled"] not in shadows   # chain stopped there
        assert h["acc_next"] in shadows
        assert plans[id(h["scaled"])].forced
        assert id(h["scaled"]) in result.forced_check_ids

    def test_opt2_disabled_duplicates_everything(self, sum_loop):
        from repro.transforms.valuechecks import CheckPlan

        module, h = sum_loop
        plans = {id(h["scaled"]): CheckPlan(h["scaled"], "range", lo=0, hi=100)}
        config = ProtectionConfig(optimization2=False)
        duplicate_state_variables(module, config=config, check_plans=plans)
        shadows = {i.shadow_of for i in h["body"].instructions if i.is_shadow}
        assert h["scaled"] in shadows
        assert not plans[id(h["scaled"])].forced

    def test_root_always_duplicated_even_if_amenable(self, sum_loop):
        from repro.transforms.valuechecks import CheckPlan

        module, h = sum_loop
        plans = {id(h["acc_next"]): CheckPlan(h["acc_next"], "range", lo=0, hi=100)}
        duplicate_state_variables(module, check_plans=plans)
        shadows = {i.shadow_of for i in h["body"].instructions if i.is_shadow}
        assert h["acc_next"] in shadows  # Opt 2 never stops at the chain root


class TestCloneInstruction:
    def test_operand_remap(self, sum_loop):
        _, h = sum_loop
        clone = clone_instruction(h["scaled"], {id(h["acc"]): h["i"]})
        assert clone.operands[0] is h["i"]
        assert clone.is_shadow and clone.shadow_of is h["scaled"]

    def test_unsupported_class_rejected(self, sum_loop):
        _, h = sum_loop
        with pytest.raises(TypeError):
            clone_instruction(h["loaded"], {})
