"""Validation tests for ProtectionConfig and CampaignConfig."""

import pytest

from repro.faultinjection import CampaignConfig
from repro.transforms import ProtectionConfig


class TestProtectionConfigValidation:
    def test_defaults_are_paper_values(self):
        cfg = ProtectionConfig()
        assert cfg.histogram_bins == 5  # B=5 in the paper's experiments
        assert cfg.optimization1 and cfg.optimization2
        assert cfg.duplicate_init_chains

    @pytest.mark.parametrize("kwargs", [
        {"coverage_threshold": 0.0},
        {"coverage_threshold": 1.5},
        {"histogram_bins": 1},
        {"range_pad_factor": -0.1},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProtectionConfig(**kwargs)

    def test_boundary_values_accepted(self):
        ProtectionConfig(coverage_threshold=1.0)
        ProtectionConfig(histogram_bins=2)
        ProtectionConfig(range_pad_factor=0.0)


class TestCampaignConfigDefaults:
    def test_paper_parameters(self):
        cfg = CampaignConfig()
        assert cfg.symptom_window == 1000       # Section IV-C
        assert cfg.timeout_factor == 10.0
        assert not cfg.swap_train_test

    def test_independent_nested_configs(self):
        a, b = CampaignConfig(), CampaignConfig()
        a.protection.histogram_bins = 9
        assert b.protection.histogram_bins == 5
        a.sim.issue_width = 8
        assert b.sim.issue_width == 2
