"""Parallel campaign engine: plan pre-drawing, worker parity, progress."""

from __future__ import annotations

import hashlib
import random
import warnings

import pytest

from repro.faultinjection import (
    CampaignConfig,
    default_jobs,
    draw_plans,
    prepare,
    resolve_jobs,
    run_campaign,
)
from repro.faultinjection.parallel import _chunk_size
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def prepared_g721():
    config = CampaignConfig(trials=6, seed=7)
    return config, prepare(get_workload("g721dec"), "dup_valchk", config)


# ---------------------------------------------------------------------------
# draw_plans
# ---------------------------------------------------------------------------


def test_draw_plans_length_and_determinism(prepared_g721):
    config, prepared = prepared_g721
    a = draw_plans(config, prepared)
    b = draw_plans(config, prepared)
    assert len(a) == config.trials
    assert [(p.cycle, p.bit, p.seed) for p in a] == [
        (p.cycle, p.bit, p.seed) for p in b
    ]


def test_draw_plans_matches_campaign_rng(prepared_g721):
    """Plans reproduce the historical interleaved draw order exactly."""
    config, prepared = prepared_g721
    key = f"{config.seed}:{prepared.workload.name}:{prepared.scheme}".encode()
    rng = random.Random(int.from_bytes(hashlib.sha256(key).digest()[:8], "big"))
    expected = []
    for _ in range(config.trials):
        cycle = rng.randrange(1, prepared.golden_instructions + 1)
        bit = rng.randrange(config.sim.register_flip_bits)
        seed = rng.randrange(1 << 30)
        expected.append((cycle, bit, seed))
    plans = draw_plans(config, prepared)
    assert [(p.cycle, p.bit, p.seed) for p in plans] == expected


def test_draw_plans_depend_on_seed_and_scheme(prepared_g721):
    config, prepared = prepared_g721
    base = [(p.cycle, p.bit, p.seed) for p in draw_plans(config, prepared)]
    reseeded = CampaignConfig(trials=config.trials, seed=config.seed + 1)
    assert [(p.cycle, p.bit, p.seed) for p in draw_plans(reseeded, prepared)] != base
    assert all(1 <= p.cycle <= prepared.golden_instructions
               for p in draw_plans(config, prepared))


# ---------------------------------------------------------------------------
# serial vs parallel parity
# ---------------------------------------------------------------------------


def test_parallel_bit_identical_to_serial(prepared_g721):
    config, prepared = prepared_g721
    workload = prepared.workload
    serial = run_campaign(workload, "dup_valchk", config, prepared=prepared)
    par_cfg = CampaignConfig(trials=config.trials, seed=config.seed, jobs=4)
    parallel = run_campaign(workload, "dup_valchk", par_cfg, prepared=prepared)
    # TrialResult is a dataclass: == compares every field of every trial.
    assert parallel.trials == serial.trials
    assert parallel.counts() == serial.counts()


def test_on_trial_called_once_per_trial(prepared_g721):
    config, prepared = prepared_g721
    workload = prepared.workload

    serial_seen = []
    run_campaign(workload, "dup_valchk", config, prepared=prepared,
                 on_trial=serial_seen.append)
    assert len(serial_seen) == config.trials

    par_cfg = CampaignConfig(trials=config.trials, seed=config.seed, jobs=2)
    par_seen = []
    result = run_campaign(workload, "dup_valchk", par_cfg, prepared=prepared,
                          on_trial=par_seen.append)
    assert len(par_seen) == config.trials
    # Completion order may differ from plan order; the multiset must match.
    assert sorted(t.injection_cycle for t in par_seen) == sorted(
        t.injection_cycle for t in result.trials
    )


# ---------------------------------------------------------------------------
# jobs resolution and chunking
# ---------------------------------------------------------------------------


def test_default_jobs_reads_env(monkeypatch):
    import os

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    monkeypatch.setenv("REPRO_JOBS", "0")  # 0 = auto: one worker per CPU
    assert default_jobs() == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "-3")
    assert default_jobs() == 1


def test_default_jobs_misparse_warns_once(monkeypatch):
    from repro.faultinjection import parallel

    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    monkeypatch.setattr(parallel, "_WARNED_JOBS_MISPARSE", False)
    with pytest.warns(RuntimeWarning, match="REPRO_JOBS"):
        assert default_jobs() == 1
    # Only the first misparse warns; later calls fall back silently.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert default_jobs() == 1


def test_resolve_jobs_explicit_wins(monkeypatch):
    import os

    monkeypatch.setenv("REPRO_JOBS", "6")
    assert resolve_jobs(2) == 2
    assert resolve_jobs(None) == 6
    assert resolve_jobs(0) == (os.cpu_count() or 1)  # explicit auto
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1


def test_chunk_size_bounds():
    assert _chunk_size(1, 4) == 1
    assert _chunk_size(8, 4) == 1
    assert _chunk_size(1000, 4) == 32  # capped
    for n in (1, 7, 60, 1000):
        for jobs in (1, 2, 4, 16):
            assert 1 <= _chunk_size(n, jobs) <= 32
