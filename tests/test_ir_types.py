"""Unit tests for repro.ir.types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PTR,
    VOID,
    FloatType,
    IntType,
    PointerType,
    parse_type,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is I32
        assert IntType(8) is I8

    def test_float_types_are_interned(self):
        assert FloatType(64) is F64
        assert FloatType(32) is F32

    def test_pointer_type_is_interned(self):
        assert PointerType() is PTR

    def test_distinct_widths_are_distinct(self):
        assert I32 is not I64
        assert F32 is not F64


class TestPredicates:
    def test_integer_predicates(self):
        assert I32.is_integer and not I32.is_float and not I32.is_pointer
        assert I1.is_bool
        assert not I8.is_bool

    def test_float_predicates(self):
        assert F64.is_float and not F64.is_integer

    def test_void_and_pointer(self):
        assert VOID.is_void
        assert PTR.is_pointer


class TestWrap:
    def test_positive_in_range(self):
        assert I32.wrap(12345) == 12345

    def test_wraps_to_negative(self):
        assert I32.wrap(0x80000000) == -(1 << 31)
        assert I32.wrap(0xFFFFFFFF) == -1

    def test_wraps_overflow(self):
        assert I32.wrap((1 << 32) + 5) == 5
        assert I8.wrap(255) == -1
        assert I8.wrap(128) == -128

    def test_i1_wrap(self):
        assert I1.wrap(1) == 1
        assert I1.wrap(2) == 0
        assert I1.wrap(3) == 1

    def test_to_unsigned(self):
        assert I32.to_unsigned(-1) == 0xFFFFFFFF
        assert I8.to_unsigned(-128) == 128

    def test_signed_bounds(self):
        assert I32.min_signed == -(1 << 31)
        assert I32.max_signed == (1 << 31) - 1
        assert I16.max_signed == 32767

    @given(st.integers(min_value=-(1 << 40), max_value=1 << 40))
    def test_wrap_is_idempotent(self, value):
        assert I32.wrap(I32.wrap(value)) == I32.wrap(value)

    @given(st.integers())
    def test_wrap_stays_in_signed_range(self, value):
        wrapped = I32.wrap(value)
        assert I32.min_signed <= wrapped <= I32.max_signed

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_wrap_round_trips_unsigned(self, raw):
        assert I32.to_unsigned(I32.wrap(raw)) == raw


class TestSizes:
    def test_size_bytes(self):
        assert I8.size_bytes == 1
        assert I32.size_bytes == 4
        assert I64.size_bytes == 8
        assert F64.size_bytes == 8
        assert F32.size_bytes == 4
        assert PTR.size_bytes == 8

    def test_i1_occupies_a_byte(self):
        assert I1.size_bytes == 1


class TestParseType:
    @pytest.mark.parametrize("name,expected", [
        ("i1", I1), ("i32", I32), ("i64", I64),
        ("f32", F32), ("f64", F64), ("ptr", PTR), ("void", VOID),
    ])
    def test_round_trip(self, name, expected):
        assert parse_type(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown IR type"):
            parse_type("i33")
