"""Unit and property tests for the fidelity metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fidelity import (
    SNR_CLAMP_DB,
    classification_error,
    evaluate,
    matrix_mismatch,
    psnr,
    segmental_snr,
)

signal = st.lists(
    st.integers(min_value=-32768, max_value=32767), min_size=8, max_size=128
)


class TestPSNR:
    def test_identical_signals_clamp(self):
        assert psnr([1, 2, 3], [1, 2, 3]) == SNR_CLAMP_DB

    def test_known_value(self):
        # constant error of 16 on an 8-bit image: PSNR = 20*log10(255/16)
        ref = np.zeros(100) + 100
        obs = ref + 16
        assert psnr(ref, obs, peak=255) == pytest.approx(
            20 * math.log10(255 / 16), abs=1e-6
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            psnr([1, 2], [1, 2, 3])

    def test_nonfinite_observed_scores_terribly(self):
        assert psnr([1.0, 2.0], [math.inf, 2.0], peak=255) < 0

    @given(signal, st.integers(min_value=0, max_value=127))
    @settings(max_examples=30)
    def test_more_noise_never_raises_psnr(self, ref, noise):
        ref = np.asarray(ref)
        small = psnr(ref, ref + noise, peak=65535)
        big = psnr(ref, ref + noise * 2, peak=65535)
        assert big <= small + 1e-9


class TestSegmentalSNR:
    def test_identical_clamp(self):
        assert segmental_snr([5] * 100, [5] * 100) == SNR_CLAMP_DB

    def test_localised_corruption_hurts_proportionally(self):
        ref = np.asarray([1000] * 256)
        one_frame = ref.copy()
        one_frame[0:64] += 5000
        many_frames = ref + 5000
        assert segmental_snr(ref, one_frame, frame=64) > segmental_snr(
            ref, many_frames, frame=64
        )

    def test_bad_frame_size_rejected(self):
        with pytest.raises(ValueError):
            segmental_snr([1], [1], frame=0)

    def test_silent_reference_with_noise_scores_zero(self):
        assert segmental_snr([0] * 64, [100] * 64, frame=64) == 0.0


class TestClassification:
    def test_exact_match(self):
        assert classification_error([1, 2, 3], [1, 2, 3]) == 0.0

    def test_fraction(self):
        assert classification_error([1, 1, 1, 1], [1, 1, 2, 2]) == 0.5

    def test_matrix_mismatch_alias(self):
        assert matrix_mismatch([0, 1], [1, 1]) == 0.5

    def test_empty_is_zero(self):
        assert classification_error([], []) == 0.0


class TestEvaluate:
    def test_higher_is_better_direction(self):
        r = evaluate("psnr", [1, 2, 3], [1, 2, 3], threshold=30.0)
        assert r.acceptable and r.identical

    def test_lower_is_better_direction(self):
        r = evaluate("class_error", [1, 1, 1, 1], [1, 1, 1, 2], threshold=0.10)
        assert not r.identical
        assert not r.acceptable  # 25% > 10%

    def test_acceptable_but_not_identical(self):
        ref = np.arange(100) + 1000
        obs = ref.copy()
        obs[0] += 1
        r = evaluate("psnr", ref, obs, threshold=30.0)
        assert r.acceptable and not r.identical

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            evaluate("ssim", [1], [1], 0.5)

    @given(signal)
    @settings(max_examples=30)
    def test_identity_is_always_acceptable(self, data):
        for metric, thr in [("psnr", 30.0), ("segsnr", 80.0),
                            ("class_error", 0.1), ("matrix_mismatch", 0.1)]:
            r = evaluate(metric, data, list(data), thr)
            assert r.identical and r.acceptable
