"""Metrics registry: instruments, disabled null path, global registry."""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    MetricsRegistry,
    enable_global,
    global_registry,
    reset_global,
)


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


def test_counter_increments():
    reg = MetricsRegistry()
    c = reg.counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert reg.counter("x") is c  # memoised by name
    assert reg.snapshot()["x"] == 5


def test_timer_accumulates():
    reg = MetricsRegistry()
    t = reg.timer("t")
    t.add_seconds(0.5)
    t.add_seconds(1.5)
    with t.time():
        pass
    assert t.count == 3
    assert t.total_seconds >= 2.0
    assert t.max_seconds == 1.5
    snap = reg.snapshot()["t"]
    assert snap["count"] == 3


def test_histogram_buckets_and_quantiles():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for v in [0, 1, 2, 3, 100, 1000]:
        h.observe(v)
    assert h.count == 6
    assert h.min_value == 0
    assert h.max_value == 1000
    assert h.mean == pytest.approx(1106 / 6)
    # nearest-rank on power-of-two buckets: upper bound >= true percentile
    assert h.quantile(0.5) >= 2
    assert h.quantile(1.0) >= 1000
    snap = h.snapshot()
    assert snap["count"] == 6 and snap["max"] == 1000


def test_histogram_clamps_negatives():
    h = MetricsRegistry().histogram("h")
    h.observe(-5)
    assert h.min_value == 0


# ---------------------------------------------------------------------------
# disabled registries are null
# ---------------------------------------------------------------------------


def test_disabled_registry_hands_out_null_instruments():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("a")
    c.inc(100)
    h = reg.histogram("b")
    h.observe(5)
    t = reg.timer("c")
    with t.time():
        pass
    assert reg.snapshot() == {}
    # all three names share the one null instrument
    assert reg.counter("a") is reg.histogram("b") is reg.timer("c")


def test_reset_clears_instruments():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.reset()
    assert reg.snapshot() == {}


# ---------------------------------------------------------------------------
# global registry
# ---------------------------------------------------------------------------


def test_global_registry_follows_env(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    reset_global()
    assert not global_registry().enabled
    monkeypatch.setenv("REPRO_OBS", "/tmp/some.jsonl")
    reset_global()
    assert global_registry().enabled
    reset_global()


def test_enable_global_forces_on(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    reset_global()
    reg = enable_global()
    assert reg.enabled and global_registry() is reg
    reg.counter("x").inc()
    assert reg.snapshot()["x"] == 1
    reset_global()


@pytest.fixture(autouse=True)
def _restore_global():
    yield
    metrics.reset_global()
