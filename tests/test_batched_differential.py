"""Differential tests: batched lane-parallel execution vs. scalar fastpath.

The batched backend (``src/repro/sim/batched.py``) is a pure optimisation:
running a campaign with ``batch=N`` must produce **byte-identical** trial
results, observability logs, and checkpoint payloads to the scalar triage
fastpath — for every scheme, every fault model, any jobs count, and any
batch size.  These tests pin that invariant the same way the compiled
fast path's own differential suite does: dataclass equality over every
TrialResult field plus raw byte comparison of the obs log files.
"""

from __future__ import annotations

import json

import pytest

from repro.faultinjection import (
    CampaignConfig,
    load_checkpoint,
    prepare,
    run_campaign,
)
from repro.faultinjection.campaign import batched_enabled
from repro.obs.events import read_events, resilience_log_path
from repro.workloads.registry import get_workload

WORKLOADS = ["g721dec", "kmeans"]
SCHEMES = ["original", "dup", "dup_valchk", "full_dup"]

_prepared_cache = {}


def _prepared(workload_name, scheme, **config_kwargs):
    """Module-lifetime prepared workloads (golden run + snapshots are the
    expensive part; they are identical for the scalar and batched runs)."""
    key = (workload_name, scheme, tuple(sorted(config_kwargs.items())))
    if key not in _prepared_cache:
        config = CampaignConfig(trials=12, seed=11, **config_kwargs)
        _prepared_cache[key] = (
            config,
            prepare(get_workload(workload_name), scheme, config),
        )
    return _prepared_cache[key]


def _campaign(prepared, scheme, obs_log, batch=None, jobs=1, **kwargs):
    base = _replaceable(kwargs)
    cfg = CampaignConfig(
        trials=12, seed=11, jobs=jobs, obs_log=str(obs_log), batch=batch,
        **base,
    )
    return run_campaign(
        prepared.workload, scheme, cfg, prepared=prepared
    ), cfg


def _replaceable(kwargs):
    return {k: v for k, v in kwargs.items() if v is not None}


def _assert_identical(tmp_path, prepared, scheme, batch, jobs=1, model=None):
    ref_log = tmp_path / "scalar.jsonl"
    bat_log = tmp_path / "batched.jsonl"
    reference, _ = _campaign(
        prepared, scheme, ref_log, jobs=jobs, fault_model=model
    )
    batched, cfg = _campaign(
        prepared, scheme, bat_log, batch=batch, jobs=jobs, fault_model=model
    )
    assert batched_enabled(cfg), "batched backend should be active"
    # Dataclass equality: every field of every trial, in order.
    assert batched.trials == reference.trials
    assert bat_log.read_bytes() == ref_log.read_bytes()
    return reference, batched


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_batched_matches_scalar_serial(tmp_path, workload, scheme):
    """4 schemes x 2 workloads: serial batched == serial scalar, bytes."""
    _, prepared = _prepared(workload, scheme)
    # batch=5 over 12 trials: two full bursts plus a remainder burst.
    _assert_identical(tmp_path, prepared, scheme, batch=5)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_batched_matches_scalar_parallel(tmp_path, workload):
    """jobs=2: workers sub-batch their chunks, results still byte-equal."""
    _, prepared = _prepared(workload, "dup_valchk")
    _assert_identical(tmp_path, prepared, "dup_valchk", batch=4, jobs=2)


@pytest.mark.parametrize(
    "model", ["mem_transient", "mem_stuck_at", "memory_word", "cache_line",
              "stack_frame", "chaos"]
)
def test_batched_matches_scalar_memory_models(tmp_path, model):
    """Memory-hierarchy models (occupancy-map triage) and the chaos mix —
    the mix also exercises lane-ineligible peeling (double_bit, burst,
    control faults ride scalar inside a batched campaign)."""
    _, prepared = _prepared("g721dec", "dup_valchk", fault_model=model)
    _assert_identical(
        tmp_path, prepared, "dup_valchk", batch=5, model=model
    )


def test_batch_size_is_immaterial(tmp_path):
    """A lane's verdict never depends on which lanes share its sweep."""
    _, prepared = _prepared("kmeans", "dup_valchk")
    logs = []
    results = []
    for batch in (2, 7, 12):
        log = tmp_path / f"b{batch}.jsonl"
        result, _ = _campaign(prepared, "dup_valchk", log, batch=batch)
        logs.append(log.read_bytes())
        results.append(result.trials)
    assert results[0] == results[1] == results[2]
    assert logs[0] == logs[1] == logs[2]


def test_batched_sidecar_accounts_every_lane(tmp_path):
    """The ``batched`` sidecar event partitions lanes into masked+diverged
    and stays out of the byte-identical main log."""
    _, prepared = _prepared("kmeans", "dup_valchk")
    log = tmp_path / "log.jsonl"
    _campaign(prepared, "dup_valchk", log, batch=6)
    main_events, skipped = read_events(log)
    assert skipped == 0
    assert all(e["event"] != "batched" for e in main_events)
    sidecar, _ = read_events(resilience_log_path(str(log)))
    batched = [e for e in sidecar if e["event"] == "batched"]
    assert len(batched) == 1
    event = batched[0]
    assert event["lanes"] == 12
    assert event["masked"] + event["diverged"] == event["lanes"]
    assert sum(event["divergence"].values()) == event["diverged"]


def test_batch_does_not_fragment_cache_key():
    """``batch`` is a pure execution-strategy knob: a batched campaign must
    hit the cache entry a scalar campaign wrote (and vice versa)."""
    from dataclasses import replace

    from repro.faultinjection.diskcache import campaign_key
    from .conftest import build_sum_loop

    module, _ = build_sum_loop()
    config = CampaignConfig(trials=8, seed=7)
    assert campaign_key(module, "w", "dup", replace(config, batch=8)) == (
        campaign_key(module, "w", "dup", config)
    )


class _InterruptAfter:
    """on_trial callback that simulates Ctrl-C after ``n`` trials."""

    def __init__(self, n):
        self.n = n
        self.seen = 0

    def __call__(self, trial):
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt


def test_batched_resume_mid_batch_byte_identical(tmp_path):
    """Interrupt a batched campaign mid-flight, resume it (still batched):
    the checkpoint holds scalar-identical trial payloads and the finished
    campaign's results and obs log match an undisturbed scalar run's."""
    from repro.faultinjection import ResiliencePolicy

    _, prepared = _prepared("g721dec", "dup_valchk")
    policy = ResiliencePolicy(
        enabled=True, checkpoint_every=1, backoff_seconds=0.0
    )

    ref_log = tmp_path / "ref.jsonl"
    reference, _ = _campaign(prepared, "dup_valchk", ref_log)

    ckpt = tmp_path / "ckpt.json"
    log = tmp_path / "log.jsonl"
    cfg = CampaignConfig(
        trials=12, seed=11, obs_log=str(log), batch=5,
        checkpoint=str(ckpt), resilience=policy,
    )
    with pytest.raises(KeyboardInterrupt):
        run_campaign(prepared.workload, "dup_valchk", cfg,
                     prepared=prepared, on_trial=_InterruptAfter(4))
    assert ckpt.exists()
    loaded = load_checkpoint(
        ckpt, json.loads(ckpt.read_text())["key"], 12
    )
    assert loaded is not None and len(loaded.completed) >= 4
    # Checkpointed payloads are the scalar trials, field for field.
    for index, trial in loaded.completed.items():
        assert trial == reference.trials[index]

    resumed = run_campaign(prepared.workload, "dup_valchk", cfg,
                           prepared=prepared)
    assert resumed.trials == reference.trials
    assert log.read_bytes() == ref_log.read_bytes()
    assert not ckpt.exists()
