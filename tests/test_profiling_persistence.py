"""Tests for profile-store persistence (save/load of offline profiles)."""

import numpy as np
import pytest

from repro.profiling import ProfileStore, collect_profiles
from repro.sim import Interpreter
from repro.transforms import ProtectionConfig, apply_scheme
from repro.workloads import get_workload


class TestPersistence:
    def test_round_trip_preserves_profiles(self, tmp_path, sum_loop):
        module, h = sum_loop
        store = collect_profiles(module, inputs={"src": list(range(16))})
        path = tmp_path / "profiles.json"
        store.save(path)

        loaded = ProfileStore.load(path, module)
        assert len(loaded) == len(store)
        original = store.get(h["acc_next"])
        restored = loaded.get(h["acc_next"])
        assert restored is not None
        assert restored.count == original.count
        assert restored.histogram.as_tuples() == original.histogram.as_tuples()
        assert restored.top_values == original.top_values

    def test_load_onto_fresh_build(self, tmp_path):
        """A profile saved from one build applies to a fresh, identical
        build of the same workload (the offline-profiling workflow)."""
        w = get_workload("g721dec")
        m1 = w.build_module()
        store = collect_profiles(m1, inputs=w.train_inputs())
        path = tmp_path / "g721dec.json"
        store.save(path)

        m2 = w.build_module()
        loaded = ProfileStore.load(path, m2)
        assert len(loaded) == len(store)

        stats = apply_scheme(m2, "dup_valchk", profiles=loaded)
        assert stats.num_value_checks > 0
        interp = Interpreter(m2, guard_mode="count")
        _, result = w.run(m2, w.test_inputs(), interpreter=interp)
        assert result.guard_stats.evaluations > 0
        assert result.guard_stats.total_failures == 0

    def test_loaded_checks_equal_fresh_checks(self, tmp_path):
        """Protection built from a loaded profile is identical to protection
        built from the live profile."""
        w = get_workload("tiff2bw")
        m1 = w.build_module()
        store = collect_profiles(m1, inputs=w.train_inputs())
        stats_live = apply_scheme(m1, "dup_valchk", profiles=store)

        m2 = w.build_module()
        path = tmp_path / "p.json"
        store2 = collect_profiles(m2, inputs=w.train_inputs())
        store2.save(path)
        m3 = w.build_module()
        loaded = ProfileStore.load(path, m3)
        stats_loaded = apply_scheme(m3, "dup_valchk", profiles=loaded)

        assert stats_loaded.num_value_checks == stats_live.num_value_checks
        assert stats_loaded.checks_by_kind == stats_live.checks_by_kind
        assert stats_loaded.num_duplicated == stats_live.num_duplicated

    def test_stale_entries_skipped(self, tmp_path, sum_loop):
        """Entries that no longer resolve (module changed) are dropped, not
        crashed on."""
        module, _ = sum_loop
        store = collect_profiles(module, inputs={"src": list(range(16))})
        data = store.to_dict()
        data["profiles"]["main:doesnotexist"] = {
            "count": 5, "bins": [[0, 1, 5]], "total": 5, "top": [[0.0, 5]],
        }
        loaded = ProfileStore.from_dict(data, module)
        assert len(loaded) == len(store)
