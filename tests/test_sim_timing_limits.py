"""Timing-model structural limits: ROB, serial gates, guard bandwidth."""

import pytest

from repro.ir import F64, I32, Constant, GuardEq, IRBuilder, Module
from repro.sim import Interpreter, SimConfig, TimingModel


def time_build(build, config=None):
    m = Module()
    fn = m.add_function("main", I32)
    b = IRBuilder(fn.add_block("entry"))
    ret = build(b)
    b.ret(ret if ret is not None else b.const(0))
    timing = TimingModel(config)
    Interpreter(m, config=config, guard_mode="count", timing=timing).run()
    return timing


class TestROB:
    def test_tiny_rob_serialises_long_latency_work(self):
        def build(b):
            last = None
            for _ in range(100):
                last = b.binop("fdiv", Constant(F64, 1.0), Constant(F64, 3.0))
            return b.fptosi(last)

        small = time_build(build, SimConfig(rob_entries=2, issue_queue=2))
        large = time_build(build, SimConfig(rob_entries=512, issue_queue=512))
        # independent divides overlap freely with a big window, serialise
        # behind completion with a 2-entry ROB
        assert small.cycles > large.cycles * 2


class TestGuardBandwidth:
    def test_guards_consume_issue_slots(self):
        def with_guards(n):
            def build(b):
                v = b.add(b.const(1), b.const(2))
                for i in range(n):
                    b.guard_eq(v, v, guard_id=i)
                return v
            return build

        none = time_build(with_guards(0))
        many = time_build(with_guards(200))
        assert many.cycles > none.cycles + 50  # ~1 slot per fused guard


class TestRetiredAccounting:
    def test_retired_counts_micro_ops(self):
        def build(b):
            v = b.add(b.const(1), b.const(2))
            for _ in range(9):
                v = b.add(v, b.const(1))
            return v

        t = time_build(build)
        # ten adds; the final `ret` ends the run without an issue slot
        assert t.retired == 10

    def test_cycles_monotonic_in_work(self):
        def n_adds(n):
            def build(b):
                v = b.add(b.const(1), b.const(2))
                for _ in range(n - 1):
                    v = b.add(v, b.const(1))
                return v
            return build

        cycles = [time_build(n_adds(n)).cycles for n in (10, 100, 400)]
        assert cycles[0] < cycles[1] < cycles[2]
