"""Shared fixtures and IR-building helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.ir import I32, IRBuilder, Module, verify_module


@pytest.fixture(scope="session", autouse=True)
def _hermetic_campaign_cache(tmp_path_factory):
    """Point the on-disk campaign cache at a per-session temp directory.

    Keeps the suite independent of (and from writing into) the user's
    ``~/.cache/repro``, and guarantees campaign-running tests actually
    exercise the code under test instead of replaying stale cached results.
    """
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def build_sum_loop(mul_factor: int = 3, n: int = 16):
    """A canonical counted loop with two state variables (i, acc).

    Returns (module, handles) where handles exposes the interesting values::

        acc = 7
        for i in 0..n:  acc = acc * mul_factor + src[i]
        dst[0] = acc
    """
    m = Module("sumloop")
    src = m.add_global("src", I32, n, is_input=True)
    dst = m.add_global("dst", I32, 1, is_output=True)
    fn = m.add_function("main", I32)
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")

    b = IRBuilder(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    cond = b.icmp("slt", i, b.const(n))
    b.condbr(cond, body, exit_)

    b.set_block(body)
    ptr = b.gep(src, i, I32)
    loaded = b.load(I32, ptr)
    scaled = b.mul(acc, b.const(mul_factor))
    acc_next = b.add(scaled, loaded)
    i_next = b.add(i, b.const(1))
    b.br(header)

    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, body)
    acc.add_incoming(b.const(7), entry)
    acc.add_incoming(acc_next, body)

    b.set_block(exit_)
    out_ptr = b.gep(dst, b.const(0), I32)
    b.store(acc, out_ptr)
    b.ret(acc)

    verify_module(m)
    handles = {
        "fn": fn, "entry": entry, "header": header, "body": body, "exit": exit_,
        "i": i, "acc": acc, "i_next": i_next, "acc_next": acc_next,
        "scaled": scaled, "loaded": loaded, "ptr": ptr, "cond": cond,
        "src": src, "dst": dst, "n": n, "mul": mul_factor,
    }
    return m, handles


def sum_loop_reference(data, mul_factor: int = 3) -> int:
    """Python model of :func:`build_sum_loop` (with i32 wrapping)."""
    acc = 7
    for v in data:
        acc = (acc * mul_factor + v) & 0xFFFFFFFF
    if acc & 0x80000000:
        acc -= 1 << 32
    return acc


@pytest.fixture
def sum_loop():
    return build_sum_loop()


@pytest.fixture
def fast_campaign_config():
    """A small-but-real campaign configuration for integration tests."""
    from repro.faultinjection import CampaignConfig

    return CampaignConfig(trials=8, seed=7)
