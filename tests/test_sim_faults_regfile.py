"""Unit tests for bit-flip semantics, the register-file model, caches, and
the branch predictor."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import F64, I1, I8, I32, I64, PTR
from repro.sim import (
    InjectionPlan,
    RegisterFile,
    flip_bit,
    value_change_magnitude,
)
from repro.sim.cache import BranchPredictor, SetAssociativeCache
from repro.sim.config import CacheConfig
import random


class TestFlipBit:
    def test_int_flip_low_bit(self):
        assert flip_bit(I32, 4, 0) == 5
        assert flip_bit(I32, 5, 0) == 4

    def test_int_flip_sign_bit(self):
        assert flip_bit(I32, 0, 31) == -(1 << 31)

    def test_bit_wraps_modulo_width(self):
        assert flip_bit(I8, 0, 8) == flip_bit(I8, 0, 0)

    def test_i1_flip(self):
        assert flip_bit(I1, 0, 0) == 1
        assert flip_bit(I1, 1, 0) == 0

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
           st.integers(min_value=0, max_value=31))
    def test_int_flip_is_involution(self, value, bit):
        assert flip_bit(I32, flip_bit(I32, value, bit), bit) == value

    @given(st.floats(allow_nan=False, width=64),
           st.integers(min_value=0, max_value=63))
    def test_float_flip_is_involution(self, value, bit):
        flipped = flip_bit(F64, value, bit)
        back = flip_bit(F64, flipped, bit)
        assert back == value or (math.isnan(back) and math.isnan(value))

    def test_float_exponent_flip_is_huge(self):
        flipped = flip_bit(F64, 1.0, 62)
        assert abs(flipped) > 1e100 or abs(flipped) < 1e-100

    def test_pointer_flip_respects_width(self):
        assert flip_bit(PTR, 0, 40, pointer_bits=32) == flip_bit(PTR, 0, 8, pointer_bits=32)
        assert flip_bit(PTR, 0, 31, pointer_bits=32) == 1 << 31


class TestChangeMagnitude:
    def test_zero_change(self):
        assert value_change_magnitude(I32, 100, 100) == 0.0

    def test_small_change(self):
        assert value_change_magnitude(I32, 100, 101) == pytest.approx(0.01)

    def test_large_change(self):
        assert value_change_magnitude(I32, 1, 1 + (1 << 20)) > 1000

    def test_infinite_for_nonfinite_floats(self):
        assert value_change_magnitude(F64, 1.0, math.inf) == math.inf

    def test_float_relative(self):
        assert value_change_magnitude(F64, 10.0, 20.0) == pytest.approx(1.0)


class TestInjectionPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            InjectionPlan(cycle=-1, bit=0)
        with pytest.raises(ValueError):
            InjectionPlan(cycle=0, bit=-1)


class TestRegisterFile:
    def test_circular_overwrite(self):
        rf = RegisterFile(4)

        class V:  # stand-in value objects
            pass

        values = [V() for _ in range(6)]
        for v in values:
            rf.write("frame", v)
        held = {s.value_obj for s in rf.occupied_slots()}
        assert held == set(values[2:])  # first two overwritten

    def test_pick_random_none_when_empty(self):
        rf = RegisterFile(4)
        assert rf.pick_random(random.Random(0)) is None

    def test_recent_window_restricts(self):
        rf = RegisterFile(16)

        class V:
            pass

        old = [V() for _ in range(8)]
        new = [V() for _ in range(4)]
        for v in old + new:
            rf.write("f", v)
        rng = random.Random(0)
        picks = {rf.pick_random(rng, recent_window=4).value_obj for _ in range(50)}
        assert picks <= set(new)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RegisterFile(0)

    def test_reset(self):
        rf = RegisterFile(4)
        rf.write("f", object())
        rf.reset()
        assert rf.occupied_slots() == []


class TestCache:
    def test_hit_after_miss(self):
        cache = SetAssociativeCache(CacheConfig(1024, 2, 64))
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1004)  # same line

    def test_lru_eviction(self):
        cache = SetAssociativeCache(CacheConfig(256, 2, 64))  # 2 sets
        a, b, c = 0x0, 0x100, 0x200  # all map to set 0 (line = addr>>6; sets=2)
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a
        assert not cache.access(a)

    def test_miss_rate(self):
        cache = SetAssociativeCache(CacheConfig(1024, 2, 64))
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)


class TestBranchPredictor:
    def test_learns_stable_direction(self):
        bp = BranchPredictor()
        for _ in range(4):
            bp.predict_and_update(1, True)
        assert bp.predict_and_update(1, True)

    def test_mispredicts_on_flip(self):
        bp = BranchPredictor()
        for _ in range(4):
            bp.predict_and_update(1, True)
        assert not bp.predict_and_update(1, False)

    def test_accuracy_tracks(self):
        bp = BranchPredictor()
        for i in range(100):
            bp.predict_and_update(7, True)
        assert bp.accuracy > 0.9
