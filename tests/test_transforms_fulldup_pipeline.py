"""Unit tests for the full-duplication baseline and the scheme pipelines."""

import pytest

from repro.frontend import compile_source
from repro.ir import Call, CondBr, GuardEq, Load, Ret, Store, verify_module
from repro.profiling import collect_profiles
from repro.sim import Interpreter
from repro.transforms import (
    SCHEMES,
    ProtectionConfig,
    apply_scheme,
    full_duplication,
)
from tests.conftest import build_sum_loop, sum_loop_reference


class TestFullDuplication:
    def test_everything_duplicable_is_duplicated(self, sum_loop):
        module, h = sum_loop
        result = full_duplication(module)
        verify_module(module)
        originals = [
            i for i in h["fn"].instructions()
            if not i.is_shadow and i.has_result and not isinstance(i, (Load, Call))
        ]
        shadows = [i for i in h["fn"].instructions() if i.is_shadow]
        assert len(shadows) == len(originals)
        assert result.num_shadow_instructions == len(shadows)

    def test_loads_shared_not_duplicated(self, sum_loop):
        module, h = sum_loop
        full_duplication(module)
        loads = [i for i in h["fn"].instructions() if isinstance(i, Load)]
        assert len(loads) == 1

    def test_guards_before_sync_points(self, sum_loop):
        module, h = sum_loop
        full_duplication(module)
        fn = h["fn"]
        for block in fn.blocks:
            for idx, instr in enumerate(block.instructions):
                if isinstance(instr, Store):
                    # value + pointer guards directly precede the store
                    prev = block.instructions[idx - 2 : idx]
                    assert all(isinstance(g, GuardEq) for g in prev)
                if isinstance(instr, CondBr):
                    assert isinstance(block.instructions[idx - 1], GuardEq)

    def test_return_value_guarded(self, sum_loop):
        module, h = sum_loop
        full_duplication(module)
        exit_block = h["exit"]
        ret_idx = next(
            i for i, ins in enumerate(exit_block.instructions) if isinstance(ins, Ret)
        )
        assert isinstance(exit_block.instructions[ret_idx - 1], GuardEq)

    def test_semantics_preserved(self, sum_loop):
        module, h = sum_loop
        full_duplication(module)
        data = [(7 * i) % 51 for i in range(h["n"])]
        result = Interpreter(module).run(inputs={"src": data})
        assert result.return_value == sum_loop_reference(data, h["mul"])
        assert result.guard_stats.total_failures == 0

    def test_call_arguments_guarded(self):
        src = """
        output int out[1];
        int dbl(int x) { return x * 2; }
        void main() { out[0] = dbl(21); }
        """
        module = compile_source(src)
        full_duplication(module)
        verify_module(module)
        interp = Interpreter(module)
        interp.run()
        assert interp.read_global("out")[0] == 42


class TestApplyScheme:
    @pytest.fixture
    def data(self):
        return [(3 * i) % 29 for i in range(16)]

    def test_unknown_scheme_rejected(self, sum_loop):
        module, _ = sum_loop
        with pytest.raises(ValueError, match="unknown scheme"):
            apply_scheme(module, "tmr")

    def test_original_is_identity(self, sum_loop):
        module, _ = sum_loop
        before = module.num_instructions()
        stats = apply_scheme(module, "original")
        assert module.num_instructions() == before
        assert stats.instructions_after == before

    def test_dup_valchk_requires_profiles(self, sum_loop):
        module, _ = sum_loop
        with pytest.raises(ValueError, match="requires value profiles"):
            apply_scheme(module, "dup_valchk")

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_schemes_preserve_semantics(self, scheme, data):
        module, h = build_sum_loop()
        profiles = None
        if scheme == "dup_valchk":
            profiles = collect_profiles(module, inputs={"src": data})
        config = ProtectionConfig(min_profile_samples=8)
        stats = apply_scheme(module, scheme, profiles=profiles, config=config)
        assert stats.scheme == scheme
        result = Interpreter(module, guard_mode="count").run(inputs={"src": data})
        assert result.return_value == sum_loop_reference(data, h["mul"])

    def test_stats_fractions(self, data):
        module, _ = build_sum_loop()
        profiles = collect_profiles(module, inputs={"src": data})
        config = ProtectionConfig(min_profile_samples=8)
        stats = apply_scheme(module, "dup_valchk", profiles=profiles, config=config)
        assert stats.num_state_variables == 2
        assert 0 < stats.frac_duplicated < 1
        assert stats.instructions_after > stats.instructions_before
        assert stats.frac_state_variables == pytest.approx(
            2 / stats.instructions_before
        )

    def test_opt_toggles_change_instrumentation(self, data):
        def build_stats(**kw):
            module, _ = build_sum_loop()
            profiles = collect_profiles(module, inputs={"src": data})
            config = ProtectionConfig(min_profile_samples=8, **kw)
            return apply_scheme(module, "dup_valchk", profiles=profiles, config=config)

        with_opt1 = build_stats(optimization1=True)
        without_opt1 = build_stats(optimization1=False)
        assert without_opt1.num_value_checks >= with_opt1.num_value_checks
