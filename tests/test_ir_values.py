"""Unit tests for repro.ir.values (constants, uses, RAUW, globals)."""

import pytest

from repro.ir import (
    F64,
    I32,
    PTR,
    Constant,
    GlobalVariable,
    IRBuilder,
    Module,
    UndefValue,
    const_bool,
    const_float,
    const_int,
)


class TestConstant:
    def test_int_constant_wraps(self):
        c = Constant(I32, 0xFFFFFFFF)
        assert c.value == -1

    def test_float_constant_coerces(self):
        c = Constant(F64, 3)
        assert isinstance(c.value, float) and c.value == 3.0

    def test_equality_by_type_and_value(self):
        assert Constant(I32, 5) == Constant(I32, 5)
        assert Constant(I32, 5) != Constant(I32, 6)

    def test_hashable(self):
        assert len({Constant(I32, 5), Constant(I32, 5), Constant(I32, 6)}) == 2

    def test_helpers(self):
        assert const_int(3).type is I32
        assert const_float(2.5).value == 2.5
        assert const_bool(True).value == 1
        assert const_bool(False).value == 0


class TestUses:
    def test_uses_recorded_on_construction(self):
        m = Module()
        fn = m.add_function("f", I32, [(I32, "x")])
        b = IRBuilder(fn.add_block("entry"))
        x = fn.args[0]
        add = b.add(x, x)
        assert (add, 0) in x.uses and (add, 1) in x.uses
        assert x.users == [add]

    def test_replace_all_uses_with(self):
        m = Module()
        fn = m.add_function("f", I32, [(I32, "x"), (I32, "y")])
        b = IRBuilder(fn.add_block("entry"))
        x, y = fn.args
        add = b.add(x, x)
        x.replace_all_uses_with(y)
        assert add.operands == (y, y)
        assert x.uses == []
        assert (add, 0) in y.uses and (add, 1) in y.uses

    def test_rauw_to_self_is_noop(self):
        m = Module()
        fn = m.add_function("f", I32, [(I32, "x")])
        b = IRBuilder(fn.add_block("entry"))
        x = fn.args[0]
        add = b.add(x, x)
        x.replace_all_uses_with(x)
        assert add.operands == (x, x)
        assert len(x.uses) == 2


class TestGlobalVariable:
    def test_has_pointer_type(self):
        g = GlobalVariable("g", I32, 8)
        assert g.type is PTR
        assert g.size_bytes == 32

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            GlobalVariable("g", I32, 0)

    def test_rejects_oversized_initializer(self):
        with pytest.raises(ValueError):
            GlobalVariable("g", I32, 2, initializer=[1, 2, 3])

    def test_io_flags(self):
        g = GlobalVariable("g", I32, 4, is_input=True)
        assert g.is_input and not g.is_output

    def test_short_rendering(self):
        assert GlobalVariable("tab", I32, 4).short() == "@tab"


class TestUndef:
    def test_undef_renders(self):
        u = UndefValue(I32)
        assert "undef" in u.short()


class TestModuleGlobals:
    def test_duplicate_global_rejected(self):
        m = Module()
        m.add_global("g", I32, 4)
        with pytest.raises(ValueError, match="duplicate"):
            m.add_global("g", I32, 4)

    def test_io_queries(self):
        m = Module()
        m.add_global("a", I32, 4, is_input=True)
        m.add_global("b", I32, 4, is_output=True)
        m.add_global("c", I32, 4)
        assert [g.name for g in m.input_globals()] == ["a"]
        assert [g.name for g in m.output_globals()] == ["b"]

    def test_missing_lookup_raises(self):
        m = Module()
        with pytest.raises(KeyError):
            m.global_var("nope")
        with pytest.raises(KeyError):
            m.function("nope")
