"""Chaos-fuzz harness: sweep mechanics and violation reporting."""

from __future__ import annotations

import pytest

from repro.faultinjection import chaos
from repro.faultinjection.outcomes import Outcome, TrialResult


class TestSweep:
    @pytest.fixture(scope="class")
    def report(self):
        # tiny but real: one workload, one scheme, every model
        return chaos.run_chaos_sweep(
            ["tiff2bw"], ["original"], trials_per_model=4, seed=12, jobs=1
        )

    def test_all_invariants_hold(self, report):
        assert report.ok, [str(v) for v in report.violations]

    def test_trial_accounting(self, report):
        assert report.campaigns == len(chaos.DEFAULT_MODELS)
        # every campaign contributes exactly its configured trials
        assert report.trials == 4 * len(chaos.DEFAULT_MODELS)
        assert report.trials == sum(
            sum(row.values()) for row in report.outcome_by_model.values()
        )

    def test_outcomes_keyed_by_concrete_model(self, report):
        from repro.sim.faults import CONCRETE_FAULT_MODELS

        assert set(report.outcome_by_model) <= set(CONCRETE_FAULT_MODELS)
        # the fixed-model campaigns guarantee every concrete model ran
        assert set(report.outcome_by_model) == set(CONCRETE_FAULT_MODELS)

    def test_renderings(self, report):
        text = report.render_text()
        assert "chaos-fuzz report" in text
        assert "all invariants held" in text
        doc = report.to_json()
        assert doc["ok"] is True
        assert doc["violations"] == []
        assert doc["trials"] == report.trials

    def test_deterministic(self, report):
        again = chaos.run_chaos_sweep(
            ["tiff2bw"], ["original"], trials_per_model=4, seed=12, jobs=1
        )
        assert again.to_json() == report.to_json()


class TestViolationPaths:
    def test_escaped_exception_is_recorded_not_raised(self, monkeypatch):
        def exploding_campaign(*args, **kwargs):
            raise RuntimeError("worker went down")

        monkeypatch.setattr(chaos, "run_campaign", exploding_campaign)
        report = chaos.run_chaos_sweep(
            ["tiff2bw"], ["original"], trials_per_model=2, seed=1,
            models=["single_bit"],
        )
        assert not report.ok
        assert [v.kind for v in report.violations] == ["escaped_exception"]
        assert "RuntimeError" in report.violations[0].detail
        assert "VIOLATIONS" in report.render_text()

    def test_watchdog_quarantine_flagged(self):
        report = chaos.ChaosReport()
        quarantined = TrialResult(
            outcome=Outcome.FAILURE, injection_cycle=1, bit=0,
            trap_kind="harness_timeout",
        )

        class FakeResult:
            trials = [quarantined]

        from repro.faultinjection.campaign import CampaignConfig

        chaos._audit_campaign(
            report, FakeResult(), CampaignConfig(trials=1), {}, "w", "s",
            "single_bit",
        )
        kinds = {v.kind for v in report.violations}
        assert "watchdog_quarantine" in kinds

    def test_model_mismatch_flagged(self):
        report = chaos.ChaosReport()
        wrong = TrialResult(
            outcome=Outcome.MASKED, injection_cycle=1, bit=0,
            fault_model="burst",
        )

        class FakeResult:
            trials = [wrong]

        from repro.faultinjection.campaign import CampaignConfig

        chaos._audit_campaign(
            report, FakeResult(), CampaignConfig(trials=1), {}, "w", "s",
            "single_bit",
        )
        assert {v.kind for v in report.violations} == {"model_mismatch"}

    def test_campaign_trials_split(self):
        assert chaos._campaign_trials(1000, 8) == 125
        assert chaos._campaign_trials(1000, 3) == 334  # rounds up
        assert chaos._campaign_trials(5, 8) == 1
