"""Campaign resilience: checkpoint/resume, worker recovery, watchdog,
quarantine.

The invariant under test throughout: recovery must be *invisible in the
results*.  A campaign that was interrupted and resumed, lost workers, or
fell back to serial execution produces byte-identical trial results and
observability logs to an undisturbed ``jobs=1`` run — recovery is visible
only in the ``<log>.resilience`` sidecar and the ``resilience.*`` metrics.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.faultinjection import (
    CampaignConfig,
    Checkpoint,
    ResiliencePolicy,
    load_checkpoint,
    prepare,
    run_campaign,
    save_checkpoint,
)
from repro.faultinjection import campaign as campaign_mod
from repro.faultinjection import parallel as parallel_mod
from repro.faultinjection import resilience as resilience_mod
from repro.faultinjection.outcomes import TrialResult
from repro.obs.events import read_events, resilience_log_path
from repro.workloads.registry import get_workload
from repro.faultinjection.outcomes import Outcome


def _dummy_trial() -> TrialResult:
    return TrialResult(outcome=Outcome.MASKED, injection_cycle=1, bit=0)


@pytest.fixture(scope="module")
def prepared_g721():
    config = CampaignConfig(trials=8, seed=7)
    return config, prepare(get_workload("g721dec"), "dup_valchk", config)


@pytest.fixture(autouse=True)
def _clean_resilience_env(monkeypatch):
    """Resilience knobs come from explicit config in these tests, not the
    caller's environment."""
    for name in (
        "REPRO_OBS", "REPRO_CHECKPOINT", "REPRO_CHECKPOINT_DIR",
        "REPRO_CHECKPOINT_EVERY", "REPRO_RESILIENCE", "REPRO_MAX_RETRIES",
        "REPRO_TRIAL_DEADLINE",
    ):
        monkeypatch.delenv(name, raising=False)


def _policy(**overrides) -> ResiliencePolicy:
    defaults = dict(enabled=True, checkpoint_every=2, backoff_seconds=0.0)
    defaults.update(overrides)
    return ResiliencePolicy(**defaults)


# ---------------------------------------------------------------------------
# checkpoint files
# ---------------------------------------------------------------------------


def test_checkpoint_round_trip(tmp_path, prepared_g721):
    config, prepared = prepared_g721
    reference = run_campaign(
        prepared.workload, "dup_valchk", config, prepared=prepared
    )
    path = tmp_path / "ckpt.json"
    completed = {i: t for i, t in enumerate(reference.trials[:5])}
    save_checkpoint(path, Checkpoint(
        key="k" * 64, workload="g721dec", scheme="dup_valchk",
        trials=config.trials, completed=completed,
        obs_log="/tmp/x.jsonl", obs_log_offset=123,
    ))
    loaded = load_checkpoint(path, "k" * 64, config.trials)
    assert loaded is not None
    # Dataclass equality: every field of every restored trial is bit-exact.
    assert loaded.completed == completed
    assert loaded.obs_log == "/tmp/x.jsonl"
    assert loaded.obs_log_offset == 123


def test_checkpoint_key_or_trials_mismatch_is_ignored(tmp_path):
    path = tmp_path / "ckpt.json"
    save_checkpoint(path, Checkpoint(
        key="a" * 64, workload="w", scheme="s", trials=10,
        completed={0: _dummy_trial()},
    ))
    assert load_checkpoint(path, "b" * 64, 10) is None
    assert load_checkpoint(path, "a" * 64, 20) is None
    # A mismatched checkpoint belongs to some other run: left in place.
    assert path.exists()


def test_corrupt_checkpoint_is_quarantined(tmp_path):
    path = tmp_path / "ckpt.json"
    save_checkpoint(path, Checkpoint(
        key="a" * 64, workload="w", scheme="s", trials=4,
        completed={0: _dummy_trial()},
    ))
    document = json.loads(path.read_text())
    document["trials"] = 999  # tamper without fixing the checksum
    path.write_text(json.dumps(document))
    assert load_checkpoint(path, "a" * 64, 999) is None
    assert not path.exists()
    quarantined = list((tmp_path / "quarantine").iterdir())
    assert [p.name for p in quarantined] == ["ckpt.json"]


def test_quarantine_file_keeps_all_evidence(tmp_path):
    for body in ("first", "second"):
        victim = tmp_path / "entry.json"
        victim.write_text(body)
        assert resilience_mod.quarantine_file(victim) is not None
    names = sorted(p.name for p in (tmp_path / "quarantine").iterdir())
    assert names == ["entry.json", "entry.json.1"]


# ---------------------------------------------------------------------------
# interrupt + resume (the acceptance scenario)
# ---------------------------------------------------------------------------


class _InterruptAfter:
    """on_trial callback that simulates Ctrl-C after ``n`` trials."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.seen = 0

    def __call__(self, trial) -> None:
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt


def _run_reference(prepared, config, obs_log):
    ref_cfg = CampaignConfig(
        trials=config.trials, seed=config.seed, jobs=1, obs_log=str(obs_log),
    )
    return run_campaign(
        prepared.workload, "dup_valchk", ref_cfg, prepared=prepared
    )


@pytest.mark.parametrize("resume_jobs", [1, 3])
def test_interrupted_campaign_resumes_byte_identical(
    tmp_path, prepared_g721, resume_jobs
):
    config, prepared = prepared_g721
    reference = _run_reference(prepared, config, tmp_path / "ref.jsonl")

    ckpt = tmp_path / "ckpt.json"
    log = tmp_path / "log.jsonl"
    cfg = CampaignConfig(
        trials=config.trials, seed=config.seed, jobs=1, obs_log=str(log),
        checkpoint=str(ckpt), resilience=_policy(),
    )
    with pytest.raises(KeyboardInterrupt):
        run_campaign(prepared.workload, "dup_valchk", cfg,
                     prepared=prepared, on_trial=_InterruptAfter(4))
    # The interrupt handler force-flushed: the checkpoint is loadable and
    # holds every completed trial.
    assert ckpt.exists()
    loaded = load_checkpoint(
        ckpt, json.loads(ckpt.read_text())["key"], config.trials
    )
    assert loaded is not None and len(loaded.completed) >= 4

    resumed_cfg = CampaignConfig(
        trials=config.trials, seed=config.seed, jobs=resume_jobs,
        obs_log=str(log), checkpoint=str(ckpt), resilience=_policy(),
    )
    seen = []
    resumed = run_campaign(prepared.workload, "dup_valchk", resumed_cfg,
                           prepared=prepared, on_trial=seen.append)
    assert resumed.trials == reference.trials
    assert len(seen) == config.trials  # restored trials still reach on_trial
    assert log.read_bytes() == (tmp_path / "ref.jsonl").read_bytes()
    assert not ckpt.exists()  # cleared after success

    sidecar_events, _ = read_events(resilience_log_path(str(log)))
    kinds = {e["kind"] for e in sidecar_events if e["event"] == "resilience"}
    assert {"checkpoint_write", "checkpoint_load", "checkpoint_clear"} <= kinds
    # And crucially: nothing leaked into the main log.
    main_events, skipped = read_events(log)
    assert skipped == 0
    assert all(e["event"] != "resilience" for e in main_events)


def test_completed_campaign_matches_unchecked_run(tmp_path, prepared_g721):
    """Checkpointing an undisturbed campaign must not perturb it."""
    config, prepared = prepared_g721
    reference = run_campaign(
        prepared.workload, "dup_valchk", config, prepared=prepared
    )
    cfg = CampaignConfig(
        trials=config.trials, seed=config.seed,
        checkpoint=str(tmp_path / "ckpt.json"), resilience=_policy(),
    )
    result = run_campaign(prepared.workload, "dup_valchk", cfg,
                          prepared=prepared)
    assert result.trials == reference.trials
    assert not (tmp_path / "ckpt.json").exists()


# ---------------------------------------------------------------------------
# worker-failure recovery
# ---------------------------------------------------------------------------

#: the crash wrapper must live at module level so the pool can pickle it by
#: reference; fork-started workers inherit the patched module attribute.
_REAL_RUN_CHUNK = parallel_mod._run_chunk


def _crash_once_run_chunk(chunk):
    flag = os.environ.get("REPRO_TEST_CRASH_FLAG", "")
    if flag and not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("crashed")
        os._exit(9)  # simulate an OOM-killed worker
    return _REAL_RUN_CHUNK(chunk)


def _always_crash_run_chunk(chunk):
    os._exit(9)


def _worker_failure_config(config, log, policy):
    return CampaignConfig(
        trials=config.trials, seed=config.seed, jobs=2,
        obs_log=str(log) if log else None, resilience=policy,
    )


def test_broken_pool_retries_and_stays_byte_identical(
    tmp_path, prepared_g721, monkeypatch
):
    config, prepared = prepared_g721
    reference = _run_reference(prepared, config, tmp_path / "ref.jsonl")

    monkeypatch.setenv("REPRO_TEST_CRASH_FLAG", str(tmp_path / "crashed"))
    monkeypatch.setattr(parallel_mod, "_run_chunk", _crash_once_run_chunk)
    log = tmp_path / "log.jsonl"
    cfg = _worker_failure_config(config, log, _policy(max_retries=2))
    result = run_campaign(prepared.workload, "dup_valchk", cfg,
                          prepared=prepared)
    assert (tmp_path / "crashed").exists()  # a worker really died
    assert result.trials == reference.trials
    assert log.read_bytes() == (tmp_path / "ref.jsonl").read_bytes()
    sidecar_events, _ = read_events(resilience_log_path(str(log)))
    kinds = [e["kind"] for e in sidecar_events if e["event"] == "resilience"]
    assert "worker_failure" in kinds and "chunk_retry" in kinds


def test_broken_pool_degrades_to_serial(tmp_path, prepared_g721, monkeypatch):
    config, prepared = prepared_g721
    reference = run_campaign(
        prepared.workload, "dup_valchk", config, prepared=prepared
    )
    monkeypatch.setattr(parallel_mod, "_run_chunk", _always_crash_run_chunk)
    log = tmp_path / "log.jsonl"
    cfg = _worker_failure_config(
        config, log, _policy(on_worker_failure="serial")
    )
    result = run_campaign(prepared.workload, "dup_valchk", cfg,
                          prepared=prepared)
    assert result.trials == reference.trials
    sidecar_events, _ = read_events(resilience_log_path(str(log)))
    assert "serial_fallback" in [
        e["kind"] for e in sidecar_events if e["event"] == "resilience"
    ]


def test_broken_pool_fail_policy_propagates(prepared_g721, monkeypatch):
    from concurrent.futures.process import BrokenProcessPool

    config, prepared = prepared_g721
    monkeypatch.setattr(parallel_mod, "_run_chunk", _always_crash_run_chunk)
    cfg = _worker_failure_config(
        config, None, _policy(on_worker_failure="fail")
    )
    with pytest.raises(BrokenProcessPool):
        run_campaign(prepared.workload, "dup_valchk", cfg, prepared=prepared)


def test_retry_budget_exhaustion_falls_back_to_serial(
    prepared_g721, monkeypatch
):
    config, prepared = prepared_g721
    reference = run_campaign(
        prepared.workload, "dup_valchk", config, prepared=prepared
    )
    monkeypatch.setattr(parallel_mod, "_run_chunk", _always_crash_run_chunk)
    cfg = _worker_failure_config(config, None, _policy(max_retries=1))
    result = run_campaign(prepared.workload, "dup_valchk", cfg,
                          prepared=prepared)
    assert result.trials == reference.trials


# ---------------------------------------------------------------------------
# per-trial wall-clock watchdog
# ---------------------------------------------------------------------------

needs_sigalrm = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="watchdog needs SIGALRM"
)


@needs_sigalrm
def test_trial_deadline_raises():
    import time

    with pytest.raises(resilience_mod.HarnessTimeout):
        with resilience_mod.trial_deadline(0.05):
            time.sleep(5)
    # The timer is disarmed on exit: this sleep must survive.
    with resilience_mod.trial_deadline(10.0):
        time.sleep(0.06)


@needs_sigalrm
def test_hung_trial_is_quarantined(tmp_path, prepared_g721, monkeypatch):
    import time

    config, prepared = prepared_g721
    plans = campaign_mod.draw_plans(config, prepared)
    hang_cycle = plans[2].cycle
    real_run_trial = campaign_mod.run_trial

    def hang_on_target(prepared_, cycle, bit, seed, cfg, stats=None):
        if cycle == hang_cycle:
            time.sleep(5)
        return real_run_trial(prepared_, cycle, bit, seed, cfg, stats=stats)

    monkeypatch.setattr(campaign_mod, "run_trial", hang_on_target)
    log = tmp_path / "log.jsonl"
    cfg = CampaignConfig(
        trials=config.trials, seed=config.seed, obs_log=str(log),
        resilience=_policy(trial_deadline_seconds=0.2),
    )
    start = time.perf_counter()
    result = run_campaign(prepared.workload, "dup_valchk", cfg,
                          prepared=prepared)
    assert time.perf_counter() - start < 4  # two 0.2s overruns, not 5s hangs
    quarantined = [
        t for t in result.trials if t.trap_kind == "harness_timeout"
    ]
    assert len(quarantined) == 1
    sidecar_events, _ = read_events(resilience_log_path(str(log)))
    kinds = [e["kind"] for e in sidecar_events if e["event"] == "resilience"]
    assert kinds.count("trial_timeout") == 2  # original + the one requeue
    assert "trial_quarantined" in kinds


def test_watchdog_off_is_passthrough(prepared_g721):
    config, prepared = prepared_g721
    plans = campaign_mod.draw_plans(config, prepared)
    cfg = CampaignConfig(trials=config.trials, seed=config.seed,
                         resilience=_policy(trial_deadline_seconds=0.0))
    trial, anomalies = resilience_mod.run_trial_guarded(
        prepared, 0, plans[0].cycle, plans[0].bit, plans[0].seed, cfg
    )
    assert anomalies == []
    assert trial == campaign_mod.run_trial(
        prepared, plans[0].cycle, plans[0].bit, plans[0].seed, cfg
    )


# ---------------------------------------------------------------------------
# cache integrity quarantine
# ---------------------------------------------------------------------------


def test_corrupt_cache_entry_is_quarantined_and_recomputed(
    tmp_path, prepared_g721
):
    from repro.faultinjection.diskcache import CampaignCache, campaign_key

    config, prepared = prepared_g721
    result = run_campaign(
        prepared.workload, "dup_valchk", config, prepared=prepared
    )
    cache = CampaignCache(root=tmp_path / "cache", enabled=True)
    key = campaign_key(prepared.module, "g721dec", "dup_valchk", config)
    cache.put(key, result)

    # Intact entry round-trips...
    assert cache.get(key).trials == result.trials

    # ...then flip bytes in the stored payload: the load must refuse it.
    path = cache._path(key)
    document = json.loads(path.read_text())
    document["result"]["records"][0]["outcome"] = "USDC"
    path.write_text(json.dumps(document))
    assert cache.get(key) is None
    assert not path.exists()
    quarantined = list((tmp_path / "cache" / "quarantine").iterdir())
    assert len(quarantined) == 1

    # A fresh put repopulates the slot (the "recomputed" half of the story).
    cache.put(key, result)
    assert cache.get(key).trials == result.trials


def test_unparsable_cache_entry_is_quarantined(tmp_path, prepared_g721):
    from repro.faultinjection.diskcache import CampaignCache

    cache = CampaignCache(root=tmp_path / "cache", enabled=True)
    cache.root.mkdir(parents=True)
    path = cache._path("deadbeef")
    path.write_text("{ truncated")
    assert cache.get("deadbeef") is None
    assert not path.exists()
    assert list((tmp_path / "cache" / "quarantine").iterdir())


# ---------------------------------------------------------------------------
# shard hygiene
# ---------------------------------------------------------------------------


def test_failed_parallel_campaign_leaves_no_shards(tmp_path, prepared_g721):
    config, prepared = prepared_g721
    log = tmp_path / "log.jsonl"
    cfg = CampaignConfig(trials=config.trials, seed=config.seed, jobs=2,
                         obs_log=str(log))

    class _Boom(Exception):
        pass

    def explode(trial):
        raise _Boom

    with pytest.raises(_Boom):
        run_campaign(prepared.workload, "dup_valchk", cfg,
                     prepared=prepared, on_trial=explode)
    leftovers = [n for n in os.listdir(tmp_path) if ".shard-" in n]
    assert leftovers == []


# ---------------------------------------------------------------------------
# policy resolution
# ---------------------------------------------------------------------------


def test_default_policy_reads_env(monkeypatch):
    policy = resilience_mod.default_policy()
    assert policy.enabled and policy.on_worker_failure == "retry"
    monkeypatch.setenv("REPRO_RESILIENCE", "serial")
    assert resilience_mod.default_policy().on_worker_failure == "serial"
    monkeypatch.setenv("REPRO_RESILIENCE", "0")
    assert not resilience_mod.default_policy().enabled
    monkeypatch.setenv("REPRO_RESILIENCE", "1")
    monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
    monkeypatch.setenv("REPRO_TRIAL_DEADLINE", "1.5")
    monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "3")
    policy = resilience_mod.default_policy()
    assert (policy.max_retries, policy.trial_deadline_seconds,
            policy.checkpoint_every) == (7, 1.5, 3)


def test_invalid_worker_failure_policy_rejected():
    with pytest.raises(ValueError):
        ResiliencePolicy(on_worker_failure="panic")


def test_backoff_delay_caps():
    assert resilience_mod.backoff_delay(0.5, 1) == 0.5
    assert resilience_mod.backoff_delay(0.5, 3) == 2.0
    assert resilience_mod.backoff_delay(10.0, 10) == 30.0


def test_jittered_backoff_stays_within_exponential_envelope():
    for attempt in (1, 2, 4):
        pure = resilience_mod.backoff_delay(0.5, attempt)
        delay = resilience_mod.jittered_backoff(0.5, attempt, key="c")
        assert 0.5 * pure <= delay <= pure
        # same key, same attempt → same delay, every time (reproducible)
        assert delay == resilience_mod.jittered_backoff(0.5, attempt, key="c")
    # no key → the historical pure-exponential schedule, unchanged
    assert resilience_mod.jittered_backoff(0.5, 2) == \
        resilience_mod.backoff_delay(0.5, 2)


# ---------------------------------------------------------------------------
# shared checkpoint directories (multi-campaign hygiene)
# ---------------------------------------------------------------------------


def test_shared_checkpoint_dir_keeps_campaigns_apart(tmp_path, prepared_g721):
    """Two campaigns checkpointing into one shared directory (the
    ``REPRO_CHECKPOINT_DIR`` sweep layout: ``checkpoint-<key[:16]>.json``)
    must never clobber, resume from, or quarantine each other's files —
    even when both are interrupted and resumed interleaved."""
    from repro.faultinjection.diskcache import campaign_key

    config_a, prepared = prepared_g721
    config_b = CampaignConfig(trials=config_a.trials, seed=config_a.seed + 1)
    shared = tmp_path / "ckpts"
    shared.mkdir()

    def _keyed(config):
        key = campaign_key(prepared.module, "g721dec", "dup_valchk", config)
        return os.path.join(str(shared), f"checkpoint-{key[:16]}.json")

    ckpt_a, ckpt_b = _keyed(config_a), _keyed(config_b)
    assert ckpt_a != ckpt_b  # different seed → different keyed file

    # a bystander checkpoint with an unrelated key must survive untouched
    decoy = shared / "checkpoint-deadbeefdeadbeef.json"
    save_checkpoint(decoy, Checkpoint(
        key="f" * 64, workload="w", scheme="s", trials=99,
        completed={0: _dummy_trial()},
    ))
    decoy_bytes = decoy.read_bytes()

    references = {}
    for label, config in (("a", config_a), ("b", config_b)):
        references[label] = _run_reference(
            prepared, config, tmp_path / f"ref-{label}.jsonl"
        )

    # interrupt A, then B — both keyed checkpoints now coexist
    for label, config, ckpt in (("a", config_a, ckpt_a),
                                ("b", config_b, ckpt_b)):
        cfg = CampaignConfig(
            trials=config.trials, seed=config.seed, jobs=1,
            obs_log=str(tmp_path / f"log-{label}.jsonl"),
            checkpoint=ckpt, resilience=_policy(),
        )
        with pytest.raises(KeyboardInterrupt):
            run_campaign(prepared.workload, "dup_valchk", cfg,
                         prepared=prepared, on_trial=_InterruptAfter(4))
    assert os.path.exists(ckpt_a) and os.path.exists(ckpt_b)

    # resume both; each must pick up only its own checkpoint
    for label, config, ckpt in (("a", config_a, ckpt_a),
                                ("b", config_b, ckpt_b)):
        cfg = CampaignConfig(
            trials=config.trials, seed=config.seed, jobs=1,
            obs_log=str(tmp_path / f"log-{label}.jsonl"),
            checkpoint=ckpt, resilience=_policy(),
        )
        resumed = run_campaign(prepared.workload, "dup_valchk", cfg,
                               prepared=prepared)
        assert resumed.trials == references[label].trials
        assert (tmp_path / f"log-{label}.jsonl").read_bytes() == \
            (tmp_path / f"ref-{label}.jsonl").read_bytes()
        assert not os.path.exists(ckpt)  # cleared its own file only

    # hygiene: nothing was quarantined, the bystander file is byte-intact
    assert not (shared / "quarantine").exists()
    assert decoy.read_bytes() == decoy_bytes
