"""Unit tests for IRBuilder and the IR verifier."""

import pytest

from repro.ir import (
    F64,
    I32,
    Constant,
    GuardEq,
    IRBuilder,
    Module,
    Phi,
    Store,
    VerificationError,
    function_to_str,
    module_to_str,
    verify_function,
    verify_module,
)
from tests.conftest import build_sum_loop


class TestBuilder:
    def test_emit_names_values(self):
        m = Module()
        fn = m.add_function("f", I32)
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(b.const(1), b.const(2))
        assert v.name

    def test_no_block_raises(self):
        b = IRBuilder()
        with pytest.raises(ValueError, match="no insertion block"):
            b.add(Constant(I32, 1), Constant(I32, 1))

    def test_emit_after_terminator_inserts_before_it(self):
        m = Module()
        fn = m.add_function("f", I32)
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        b.ret(b.const(0))
        v = b.add(b.const(1), b.const(2))
        assert entry.instructions[-1].opcode == "ret"
        assert entry.instructions[0] is v

    def test_double_terminator_rejected(self):
        m = Module()
        fn = m.add_function("f", I32)
        b = IRBuilder(fn.add_block("entry"))
        b.ret(b.const(0))
        with pytest.raises(ValueError, match="terminator"):
            b.ret(b.const(1))

    def test_phi_inserted_at_top(self):
        m = Module()
        fn = m.add_function("f", I32)
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        b.add(b.const(1), b.const(2))
        phi = b.phi(I32)
        assert entry.instructions[0] is phi

    def test_int_cast_helper(self):
        from repro.ir import I16, I64

        m = Module()
        fn = m.add_function("f", I32, [(I32, "x")])
        b = IRBuilder(fn.add_block("entry"))
        x = fn.args[0]
        assert b.int_cast(x, I32) is x  # no-op
        widened = b.int_cast(x, I64)
        assert widened.opcode == "sext"
        narrowed = b.int_cast(x, I16)
        assert narrowed.opcode == "trunc"


class TestVerifier:
    def test_accepts_well_formed(self, sum_loop):
        module, _ = sum_loop
        verify_module(module)  # should not raise

    def test_missing_terminator(self):
        m = Module()
        fn = m.add_function("f", I32)
        fn.add_block("entry")
        with pytest.raises(VerificationError, match="missing terminator"):
            verify_function(fn)

    def test_phi_after_non_phi(self):
        m = Module()
        fn = m.add_function("f", I32)
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        v = b.add(b.const(1), b.const(2))
        b.ret(v)
        phi = Phi(I32, "p")
        entry.instructions.insert(1, phi)
        phi.parent = entry
        with pytest.raises(VerificationError, match="phi after non-phi"):
            verify_function(fn)

    def test_phi_incomings_must_match_predecessors(self, sum_loop):
        module, h = sum_loop
        phi = h["i"]
        phi.remove_incoming(h["entry"])
        with pytest.raises(VerificationError, match="do not match predecessors"):
            verify_function(h["fn"])

    def test_use_before_def_in_block(self):
        m = Module()
        fn = m.add_function("f", I32)
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        one = b.add(b.const(1), b.const(1))
        two = b.add(one, one)
        b.ret(two)
        # swap so `two` uses `one` before its definition
        entry.instructions[0], entry.instructions[1] = (
            entry.instructions[1],
            entry.instructions[0],
        )
        with pytest.raises(VerificationError, match="used before defined"):
            verify_function(fn)

    def test_cross_block_dominance(self, sum_loop):
        module, h = sum_loop
        # Move the loaded value's use into a block that the definition does
        # not dominate: store `loaded` in the exit block.
        exit_block = h["exit"]
        bad = Store(h["loaded"], h["ptr"])
        exit_block.insert(0, bad)
        with pytest.raises(VerificationError, match="not dominated"):
            verify_function(h["fn"])

    def test_foreign_value_rejected(self):
        m = Module()
        f1 = m.add_function("f1", I32, [(I32, "x")])
        f2 = m.add_function("f2", I32)
        b = IRBuilder(f2.add_block("entry"))
        b.ret(f1.args[0])
        with pytest.raises(VerificationError, match="argument of another function"):
            verify_function(f2)


class TestPrinter:
    def test_module_printing_is_stable(self, sum_loop):
        module, _ = sum_loop
        text1 = module_to_str(module)
        text2 = module_to_str(module)
        assert text1 == text2
        assert "@src = global i32 x 16" in text1
        assert "define i32 @main()" in text1
        assert "phi i32" in text1

    def test_shadow_marker(self, sum_loop):
        from repro.transforms import duplicate_state_variables

        module, h = sum_loop
        duplicate_state_variables(module)
        text = function_to_str(h["fn"])
        assert ";dup" in text
        assert "guard_eq" in text
