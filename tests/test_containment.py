"""Crash containment: exact trap_kind/Outcome mapping per trap class.

Each handwritten IR program computes a benign checksum, then reads a one-word
``flag`` input late in the run; when the flag is non-zero it deliberately
provokes one specific trap (bad load / divide-by-zero / infinite recursion /
infinite loop).  A stub fault model flips the flag word at injection time, so
the trap is a deterministic *consequence of the injected corruption* — which
lets these tests pin down the exact (outcome, trap_kind) classification for
every run-terminating event, including the ``contained:*`` taxonomy for
harness exceptions the corruption provokes inside the simulator itself.
"""

from __future__ import annotations

import struct
import warnings

import pytest

from repro.faultinjection.campaign import CampaignConfig, prepare, run_trial
from repro.faultinjection.outcomes import Outcome
from repro.obs import events as obs_events
from repro.sim.config import SimConfig
from repro.sim.events import GuardTrap, HarnessContainedTrap
from repro.sim.faults import FAULT_MODELS, FaultModel
from repro.ir import I32, IRBuilder, Module, verify_module
from repro.workloads.base import Workload

N = 8


def build_flag_trap_module(kind: str) -> Module:
    """A program that traps with ``kind`` iff the ``flag`` input is non-zero.

    Golden runs (flag == 0) compute ``dst[0] = sum(src)`` and finish clean;
    a corrupted run that sets the flag reaches the trap block.
    """
    m = Module(f"trap_{kind}")
    flag = m.add_global("flag", I32, 1, is_input=True)
    src = m.add_global("src", I32, N, is_input=True)
    dst = m.add_global("dst", I32, 1, is_output=True)

    rec = None
    if kind == "stack_overflow":
        # rec(x): x != 0 ? rec(x) : 0 — bottomless for any non-zero input
        rec = m.add_function("rec", I32, arg_types=[(I32, "x")])
        r_entry = rec.add_block("entry")
        r_again = rec.add_block("again")
        r_done = rec.add_block("done")
        rb = IRBuilder(r_entry)
        x = rec.args[0]
        r_cond = rb.icmp("ne", x, rb.const(0))
        rb.condbr(r_cond, r_again, r_done)
        rb.set_block(r_again)
        deeper = rb.call(rec, [x])
        rb.ret(deeper)
        rb.set_block(r_done)
        rb.ret(rb.const(0))

    fn = m.add_function("main", I32)
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    check = fn.add_block("check")
    trap = fn.add_block("trap")
    exit_ = fn.add_block("exit")

    b = IRBuilder(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    cond = b.icmp("slt", i, b.const(N))
    b.condbr(cond, body, check)

    b.set_block(body)
    loaded = b.load(I32, b.gep(src, i, I32))
    acc_next = b.add(acc, loaded)
    i_next = b.add(i, b.const(1))
    b.br(header)

    i.add_incoming(b.const(0), entry)
    i.add_incoming(i_next, body)
    acc.add_incoming(b.const(0), entry)
    acc.add_incoming(acc_next, body)

    b.set_block(check)
    flag_val = b.load(I32, b.gep(flag, b.const(0), I32), "flagval")
    armed = b.icmp("ne", flag_val, b.const(0))
    b.condbr(armed, trap, exit_)

    b.set_block(trap)
    if kind == "memory":
        # src has N words; index far past it stays inside the segment's
        # address page but out of bounds -> MemoryTrap
        b.load(I32, b.gep(src, b.const(1 << 12), I32))
        b.br(exit_)
    elif kind == "arithmetic":
        # flag == 1 in the corrupted run, so the divisor is zero
        b.sdiv(b.const(1), b.sub(b.const(1), flag_val))
        b.br(exit_)
    elif kind == "timeout":
        spin = fn.add_block("spin")
        b.br(spin)
        b.set_block(spin)
        b.condbr(armed, spin, exit_)  # flag never changes: spins forever
    elif kind == "stack_overflow":
        b.call(rec, [flag_val])
        b.br(exit_)
    else:  # pragma: no cover - test author error
        raise ValueError(kind)

    b.set_block(exit_)
    b.store(acc, b.gep(dst, b.const(0), I32))
    b.ret(acc)

    verify_module(m)
    return m


class IRWorkload(Workload):
    """Adapter running a handwritten module through the campaign machinery."""

    suite = "tests"
    category = "synthetic"
    fidelity_metric = "psnr"
    fidelity_threshold = 30.0

    def __init__(self, name: str, module: Module, inputs: dict) -> None:
        self.name = name
        self._module = module
        self._inputs = inputs

    def build_module(self) -> Module:
        return self._module

    def train_inputs(self):
        return dict(self._inputs)

    def test_inputs(self):
        return dict(self._inputs)


class FlagFlipFault(FaultModel):
    """Stub model: flip bit 0 of the ``flag`` global's word (0 -> 1)."""

    name = "flag_flip"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        seg = next(
            s for s in interp.memory.unique_segments() if s.name == "flag"
        )
        before, after = interp.memory.flip_word_bit(seg, 0, 0)
        record.landed = True
        record.was_live = True
        record.value_name = "<mem:flag+0x0>"
        record.type_name = "i32"
        record.before = before
        record.after = after
        return -1


class RaisingFault(FaultModel):
    """Stub model: the injection itself explodes with a Python exception."""

    name = "raising"

    def __init__(self, exc: BaseException) -> None:
        self._exc = exc

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        record.landed = True
        raise self._exc


class LateRaisingFault(FaultModel):
    """Raises on the *re-fire* visit, well after the injection cycle."""

    name = "late_raising"

    def __init__(self, delay: int) -> None:
        self.delay = delay

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        record.landed = True
        return interp.cycle + self.delay

    def reapply(self, interp, plan) -> int:
        raise ValueError("delayed corruption consequence")


class GuardRaisingFault(FaultModel):
    """Raises a GuardTrap directly (software-check detection path)."""

    name = "guard_raising"

    def inject(self, interp, plan, record, top_frame, next_index) -> int:
        record.landed = True
        raise GuardTrap(5, "range", interp.cycle)


def _workload(kind: str) -> IRWorkload:
    return IRWorkload(
        f"trap_{kind}",
        build_flag_trap_module(kind),
        {"flag": [0], "src": list(range(1, N + 1))},
    )


def _config(**kwargs) -> CampaignConfig:
    defaults = dict(trials=4, seed=3)
    defaults.update(kwargs)
    return CampaignConfig(**defaults)


def _run_with_model(monkeypatch, kind, model, config=None, cycle=2, bit=0):
    monkeypatch.setitem(FAULT_MODELS, model.name, model)
    config = config or _config()
    prepared = prepare(_workload(kind), "original", config)
    return run_trial(prepared, cycle, bit, 1, config, model=model.name)


class TestTrapKindMapping:
    """Each trap class maps to exactly one (outcome, trap_kind) pair."""

    @pytest.mark.parametrize(
        "kind,outcome,trap_kind",
        [
            ("memory", Outcome.HWDETECT, "memory"),
            ("arithmetic", Outcome.HWDETECT, "arithmetic"),
            ("stack_overflow", Outcome.HWDETECT, "stack_overflow"),
            ("timeout", Outcome.FAILURE, "timeout"),
        ],
    )
    def test_flag_triggered_trap(self, monkeypatch, kind, outcome, trap_kind):
        config = _config(
            symptom_window=10_000, sim=SimConfig(max_call_depth=16)
        )
        trial = _run_with_model(monkeypatch, kind, FlagFlipFault(), config)
        assert trial.outcome is outcome
        assert trial.trap_kind == trap_kind
        assert trial.landed and trial.was_live
        assert trial.event_cycle is not None
        assert trial.event_cycle > trial.injection_cycle
        assert trial.fault_model == "flag_flip"

    def test_trap_outside_symptom_window_is_failure(self, monkeypatch):
        # Same memory trap, but a zero-cycle symptom window: the trap fires
        # strictly after injection, so it must classify as Failure.
        trial = _run_with_model(
            monkeypatch, "memory", FlagFlipFault(), _config(symptom_window=0)
        )
        assert trial.outcome is Outcome.FAILURE
        assert trial.trap_kind == "memory"

    def test_guard_trap_maps_to_swdetect(self, monkeypatch):
        trial = _run_with_model(monkeypatch, "memory", GuardRaisingFault())
        assert trial.outcome is Outcome.SWDETECT
        assert trial.trap_kind == "guard"
        assert trial.detector_guard == 5
        assert trial.detector_kind == "range"

    def test_golden_run_never_traps(self):
        # flag == 0: every program completes and matches its own golden.
        for kind in ("memory", "arithmetic", "timeout", "stack_overflow"):
            config = _config(sim=SimConfig(max_call_depth=16))
            prepared = prepare(_workload(kind), "original", config)
            assert prepared.golden_instructions > 0


class TestContainment:
    """Post-injection Python exceptions become classified contained traps."""

    @pytest.mark.parametrize(
        "exc",
        [
            ValueError("corrupted operand"),
            RecursionError("corrupted call target"),
            OverflowError("value outside packable range"),
            struct.error("bad pack"),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_injection_exception_is_contained(self, monkeypatch, exc):
        trial = _run_with_model(monkeypatch, "memory", RaisingFault(exc))
        assert trial.outcome is Outcome.HWDETECT  # latency 0 <= window
        assert trial.trap_kind == f"contained:{type(exc).__name__}"
        assert trial.fault_model == "raising"

    def test_late_contained_exception_is_failure(self, monkeypatch):
        # The corruption's consequence fires on the re-fire visit, beyond
        # the symptom window -> Failure, still classified, never escaped.
        trial = _run_with_model(
            monkeypatch, "memory", LateRaisingFault(delay=50),
            _config(symptom_window=10),
        )
        assert trial.outcome is Outcome.FAILURE
        assert trial.trap_kind == "contained:ValueError"

    def test_pre_injection_exception_escapes(self, monkeypatch):
        # Before the fault lands the run is golden; an exception there is a
        # harness bug and must surface, not be classified as a trial result.
        config = _config()
        prepared = prepare(_workload("memory"), "original", config)

        def broken_run(*args, **kwargs):
            raise ValueError("harness bug")

        monkeypatch.setattr(prepared.workload, "run", broken_run)
        with pytest.raises(ValueError, match="harness bug"):
            run_trial(prepared, 2, 0, 1, config)

    def test_contained_trap_self_describes(self):
        trap = HarnessContainedTrap("OverflowError", "too big", cycle=42)
        assert trap.trap_kind == "contained:OverflowError"
        assert trap.cycle == 42
        assert "OverflowError" in str(trap)


class TestObsEventFields:
    """Trial events carry the trap kind and non-default fault model."""

    def test_contained_campaign_events(self, monkeypatch, tmp_path):
        from repro.faultinjection.campaign import run_campaign

        monkeypatch.setitem(FAULT_MODELS, "flag_flip", FlagFlipFault())
        log = tmp_path / "trials.jsonl"
        config = _config(
            trials=6, fault_model="flag_flip", obs_log=str(log),
            symptom_window=10_000,
        )
        result = run_campaign(_workload("memory"), "original", config)
        assert result.fault_model == "flag_flip"
        events, skipped = obs_events.read_events(log)
        assert skipped == 0
        trials = [e for e in events if e["event"] == "trial"]
        assert len(trials) == config.trials
        begin = next(e for e in events if e["event"] == "campaign_begin")
        assert begin["fault_model"] == "flag_flip"
        for event, trial in zip(trials, result.trials):
            assert event["fault_model"] == "flag_flip"
            assert event["outcome"] == trial.outcome.value
            assert event["trap"] == trial.trap_kind
            # any trial injected before the flag read must end in the trap
            if trial.trap_kind:
                assert trial.trap_kind == "memory"


class TestWatchdogDegradation:
    """trial_deadline degrades gracefully where SIGALRM can't work."""

    def test_unavailable_host_warns_once_and_counts(self, monkeypatch):
        from repro.faultinjection import resilience
        from repro.obs.metrics import enable_global

        registry = enable_global()
        monkeypatch.setattr(resilience, "_watchdog_available", lambda: False)
        monkeypatch.setattr(
            resilience, "_WARNED_WATCHDOG_UNAVAILABLE", False
        )
        counter = registry.counter("resilience.watchdog_unavailable")
        before = counter.value
        with pytest.warns(RuntimeWarning, match="falling back"):
            with resilience.trial_deadline(1.0) as armed:
                assert armed is False
        assert counter.value == before + 1
        # second entry: counted again, but warned only once
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with resilience.trial_deadline(1.0) as armed:
                assert armed is False
        assert counter.value == before + 2

    def test_disabled_deadline_is_silent(self):
        from repro.faultinjection.resilience import trial_deadline

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with trial_deadline(0) as armed:
                assert armed is False

    def test_available_host_still_arms(self):
        from repro.faultinjection.resilience import (
            _watchdog_available,
            trial_deadline,
        )

        if not _watchdog_available():
            pytest.skip("needs SIGALRM on the main thread")
        with trial_deadline(30.0) as armed:
            assert armed is True
