"""Span tracing + live telemetry: determinism differentials and unit tests.

The house invariant under test: tracing (``REPRO_TRACE``/``--trace``) and the
heartbeat (``REPRO_HEARTBEAT``/``--heartbeat``) are pure sidecars — campaign
results, the main obs JSONL log, cache keys, and checkpoints are
byte-identical with them on or off, serial or parallel.  Plus unit coverage
for the trace schema round-trip, the phase summary's self-time accounting,
heartbeat atomicity, the ``repro.obs top`` watcher, gzip event logs, and the
progress printer's EMA/ETA columns.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from dataclasses import replace

import pytest

from repro.faultinjection.campaign import CampaignConfig, prepare, run_campaign
from repro.faultinjection.diskcache import campaign_key
from repro.faultinjection.outcomes import Outcome, TrialResult
from repro.faultinjection.progress import ProgressPrinter
from repro.faultinjection.resilience import Checkpoint, save_checkpoint
from repro.obs import events as obs_events
from repro.obs import trace as trace_mod
from repro.obs.heartbeat import (
    HEARTBEAT_SCHEMA_VERSION,
    HeartbeatWriter,
    read_heartbeat,
    resolve_heartbeat,
)
from repro.obs.report import LogReport
from repro.obs.top import render_heartbeat, watch
from repro.obs.trace import (
    load_trace,
    render_summary,
    resolve_trace,
    summarize_trace,
    validate_trace,
)
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Fast path on, every telemetry/prefix env knob off, tracer reset."""
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    for var in ("REPRO_SNAPSHOT", "REPRO_SNAPSHOT_EVERY", "REPRO_TRIAGE",
                "REPRO_TRACE", "REPRO_HEARTBEAT", "REPRO_OBS"):
        monkeypatch.delenv(var, raising=False)
    yield
    trace_mod.activate(None)


@pytest.fixture(scope="module")
def prepared_g721():
    """One shared prepared workload for every campaign in this file."""
    os.environ["REPRO_FASTPATH"] = "1"
    for var in ("REPRO_SNAPSHOT", "REPRO_SNAPSHOT_EVERY", "REPRO_TRIAGE",
                "REPRO_TRACE"):
        os.environ.pop(var, None)
    workload = get_workload("g721dec")
    prepared = prepare(workload, "dup_valchk", _base_config())
    return prepared


def _base_config() -> CampaignConfig:
    return CampaignConfig(trials=6, seed=11, snapshot_every=0, triage=False)


def _campaign(prepared, config, log_path):
    cfg = replace(config, obs_log=str(log_path))
    result = run_campaign(prepared.workload, prepared.scheme, cfg,
                          prepared=prepared)
    return result, log_path.read_bytes()


def _trial_records(result):
    from repro.faultinjection.outcomes import trial_to_record

    return [trial_to_record(t) for t in result.trials]


# ---------------------------------------------------------------------------
# differential: tracing/heartbeat must not change anything observable
# ---------------------------------------------------------------------------


def test_trace_differential_byte_identical(tmp_path, prepared_g721):
    """Trace + heartbeat on vs off, serial and jobs=2: identical trial
    records and byte-identical main obs logs."""
    base_cfg = _base_config()
    baseline, base_log = _campaign(
        prepared_g721, base_cfg, tmp_path / "base.jsonl"
    )

    variants = {
        "traced": replace(base_cfg, trace=str(tmp_path / "t1.json")),
        "traced_jobs2": replace(
            base_cfg, jobs=2, trace=str(tmp_path / "t2.json")
        ),
        "traced_heartbeat": replace(
            base_cfg,
            trace=str(tmp_path / "t3.json"),
            heartbeat=str(tmp_path / "hb.json"),
        ),
    }
    for label, cfg in variants.items():
        result, log = _campaign(prepared_g721, cfg, tmp_path / f"{label}.jsonl")
        assert _trial_records(result) == _trial_records(baseline), label
        assert log == base_log, label
        assert os.path.exists(cfg.trace), label

    # Worker span sidecars must never outlive the export.
    leftovers = [n for n in os.listdir(tmp_path) if ".spans-" in n]
    assert leftovers == []

    # The parallel trace records spans from the parent and the workers.
    parallel = load_trace(variants["traced_jobs2"].trace)
    assert validate_trace(parallel) == []
    assert len(summarize_trace(parallel).pids) >= 2

    # The heartbeat variant left a terminal status document behind.
    heartbeat = read_heartbeat(variants["traced_heartbeat"].heartbeat)
    assert heartbeat is not None
    assert heartbeat["status"] == "done"
    assert heartbeat["trials_done"] == base_cfg.trials
    assert sum(heartbeat["outcomes"].values()) == base_cfg.trials


def test_cache_key_ignores_telemetry(prepared_g721):
    """trace/heartbeat paths must not fragment the campaign cache."""
    cfg = _base_config()
    key = campaign_key(prepared_g721.module, "g721dec", "dup_valchk", cfg)
    traced = replace(cfg, trace="/tmp/spans.json", heartbeat="/tmp/hb.json")
    assert campaign_key(
        prepared_g721.module, "g721dec", "dup_valchk", traced
    ) == key


def test_checkpoint_bytes_identical_with_tracing(tmp_path, prepared_g721):
    """A checkpoint built from a traced campaign's trials is byte-identical
    to one built from the untraced run (wall-clock never leaks in)."""
    base_cfg = _base_config()
    baseline, _ = _campaign(prepared_g721, base_cfg, tmp_path / "a.jsonl")
    traced, _ = _campaign(
        prepared_g721,
        replace(base_cfg, trace=str(tmp_path / "trace.json")),
        tmp_path / "b.jsonl",
    )
    paths = []
    for name, result in (("plain.ckpt", baseline), ("traced.ckpt", traced)):
        path = tmp_path / name
        save_checkpoint(path, Checkpoint(
            key="k", workload="g721dec", scheme="dup_valchk",
            trials=base_cfg.trials,
            completed=dict(enumerate(result.trials)),
        ))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_trace_env_var_enables_tracing(tmp_path, prepared_g721, monkeypatch):
    trace_file = tmp_path / "env-trace.json"
    monkeypatch.setenv("REPRO_TRACE", str(trace_file))
    _campaign(prepared_g721, _base_config(), tmp_path / "log.jsonl")
    assert trace_file.exists()
    assert validate_trace(load_trace(trace_file)) == []


# ---------------------------------------------------------------------------
# trace schema round-trip + phase summary
# ---------------------------------------------------------------------------


def test_trace_schema_roundtrip_and_self_time(tmp_path, prepared_g721):
    """Exported trace validates, and per-phase self times account for >=95%
    of the campaign wall time (the telescoping property)."""
    trace_file = tmp_path / "trace.json"
    cfg = replace(_base_config(), trace=str(trace_file))
    _campaign(prepared_g721, cfg, tmp_path / "log.jsonl")

    document = load_trace(trace_file)
    assert validate_trace(document) == []
    assert document["otherData"]["schema"] == trace_mod.TRACE_SCHEMA_VERSION

    summary = summarize_trace(document)
    assert summary.campaign_wall_us > 0
    assert len(summary.campaigns) == 1
    assert summary.campaigns[0]["workload"] == "g721dec"
    assert summary.campaigns[0]["trials"] == cfg.trials
    # Every trial contributes a trial span with replay/classify children.
    assert summary.phases[("trial", "trial")]["count"] == cfg.trials
    assert ("trial", "replay") in summary.phases
    coverage = summary.in_campaign_self_us / summary.campaign_wall_us
    assert coverage >= 0.95

    rendered = render_summary(summary)
    assert "trace phase report" in rendered
    assert "per-phase self time" in rendered
    assert "critical path" in rendered


def test_validate_trace_flags_problems():
    assert validate_trace([]) == ["trace document is not a JSON object"]
    assert validate_trace({}) == ["traceEvents is missing or not an array"]
    assert validate_trace({"traceEvents": []}) == ["traceEvents is empty"]
    bad = {"traceEvents": [
        {"ph": "Z"},
        {"ph": "X", "name": 1, "cat": "c", "ts": 0, "pid": 0, "tid": 0},
        {"ph": "X", "name": "n", "cat": "c", "ts": 0, "pid": 0, "tid": 0},
    ]}
    problems = validate_trace(bad)
    assert any("unknown phase" in p for p in problems)
    assert any("bad 'name'" in p for p in problems)
    assert any("without int 'dur'" in p for p in problems)


def test_null_tracer_is_inert(tmp_path):
    tracer = trace_mod.activate(None)
    assert tracer is trace_mod.current()
    assert not tracer.enabled
    with tracer.span("anything", cat="x", a=1) as span:
        span.add(b=2)
    tracer.instant("mark")
    tracer.flush_sidecar()
    tracer.export()
    assert os.listdir(tmp_path) == []


def test_resolve_trace_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert resolve_trace(None) is None
    assert resolve_trace("explicit.json") == "explicit.json"
    monkeypatch.setenv("REPRO_TRACE", "from-env.json")
    assert resolve_trace(None) == "from-env.json"
    assert resolve_trace("explicit.json") == "explicit.json"
    monkeypatch.setenv("REPRO_TRACE", "off")
    assert resolve_trace(None) is None


def test_sidecar_flush_and_merge(tmp_path):
    """A (simulated) worker's sidecar folds back into the exported trace."""
    path = str(tmp_path / "trace.json")
    tracer = trace_mod.Tracer(path)
    with tracer.span("chunk", cat="chunk"):
        pass
    tracer.flush_sidecar()
    assert os.path.exists(tracer.sidecar_path())
    assert tracer.events == []

    with tracer.span("campaign", cat="campaign"):
        pass
    assert tracer.export() == path
    assert not os.path.exists(tracer.sidecar_path())
    names = {e["name"] for e in load_trace(path)["traceEvents"]}
    assert {"chunk", "campaign"} <= names


# ---------------------------------------------------------------------------
# heartbeat
# ---------------------------------------------------------------------------


def test_heartbeat_roundtrip(tmp_path):
    path = tmp_path / "hb.json"
    writer = HeartbeatWriter(str(path), workload="g721dec",
                             scheme="dup_valchk", total=10, min_interval=0.0)
    writer.begin()
    for outcome in ("Masked", "SWDetect", "Masked"):
        writer.trial(outcome)
    writer.incident()
    writer.finish("done")

    doc = read_heartbeat(path)
    assert doc["v"] == HEARTBEAT_SCHEMA_VERSION
    assert doc["workload"] == "g721dec"
    assert doc["status"] == "done"
    assert doc["trials_done"] == 3
    assert doc["trials_total"] == 10
    assert doc["outcomes"] == {"Masked": 2, "SWDetect": 1}
    assert doc["resilience_incidents"] == 1
    assert doc["pid"] == os.getpid()


def test_heartbeat_atomic_no_temp_leftovers(tmp_path):
    """Every update is a complete parseable document and the temp files of
    the atomic replace never survive."""
    path = tmp_path / "hb.json"
    writer = HeartbeatWriter(str(path), total=50, min_interval=0.0)
    for i in range(50):
        writer.trial("Masked")
        doc = json.loads(path.read_text())
        assert doc["trials_done"] == i + 1
    assert [n for n in os.listdir(tmp_path) if n != "hb.json"] == []


def test_heartbeat_rate_limit(tmp_path):
    path = tmp_path / "hb.json"
    writer = HeartbeatWriter(str(path), total=10, min_interval=3600.0)
    writer.begin()
    writer.trial("Masked")
    writer.trial("Masked")
    # Inside the interval the file still shows the forced begin() document.
    assert read_heartbeat(path)["trials_done"] == 0
    writer.finish("done")  # forced, bypasses the limiter
    assert read_heartbeat(path)["trials_done"] == 2


def test_heartbeat_missing_file_and_resolve(tmp_path, monkeypatch):
    assert read_heartbeat(tmp_path / "nope.json") is None
    monkeypatch.delenv("REPRO_HEARTBEAT", raising=False)
    assert resolve_heartbeat(None) is None
    assert resolve_heartbeat("x.json") == "x.json"
    monkeypatch.setenv("REPRO_HEARTBEAT", "env.json")
    assert resolve_heartbeat(None) == "env.json"


# ---------------------------------------------------------------------------
# repro.obs top
# ---------------------------------------------------------------------------


def test_render_heartbeat_frame():
    doc = {
        "v": 1, "workload": "g721dec", "scheme": "dup_valchk",
        "status": "running", "trials_done": 30, "trials_total": 60,
        "outcomes": {"Masked": 20, "SWDetect": 10},
        "trials_per_sec": 100.0, "trials_per_sec_ema": 120.0,
        "eta_seconds": 75.0, "elapsed_seconds": 0.3,
        "resilience_incidents": 2, "pid": 1, "updated_unix": 1000.0,
    }
    frame = render_heartbeat(doc, now_unix=1001.0)
    assert "g721dec/dup_valchk" in frame
    assert "30/60" in frame
    assert "120.0 ema" in frame
    assert "eta 01:15" in frame
    assert "Masked=20" in frame
    assert "resilience incidents: 2" in frame
    assert "STALE" not in frame
    # A running heartbeat that stopped updating is flagged.
    assert "STALE" in render_heartbeat(doc, now_unix=1000.0 + 60)


def test_watch_once_exit_codes(tmp_path):
    missing = io.StringIO()
    assert watch(str(tmp_path / "nope.json"), once=True, stream=missing) == 1
    assert "no heartbeat" in missing.getvalue()

    path = tmp_path / "hb.json"
    HeartbeatWriter(str(path), workload="w", scheme="s", total=4).begin()
    present = io.StringIO()
    assert watch(str(path), once=True, stream=present) == 0
    assert "w/s" in present.getvalue()


def test_watch_until_done(tmp_path):
    path = tmp_path / "hb.json"
    writer = HeartbeatWriter(str(path), total=4)
    writer.finish("done")
    stream = io.StringIO()
    assert watch(str(path), interval=0.0, until_done=True, stream=stream) == 0


# ---------------------------------------------------------------------------
# gzip event logs
# ---------------------------------------------------------------------------


def _sample_events(n=5):
    return [{"event": "trial", "v": 1, "i": i} for i in range(n)]


def test_gzip_log_roundtrip_and_determinism(tmp_path):
    events = _sample_events()
    paths = []
    for name in ("a.jsonl.gz", "b.jsonl.gz"):
        path = tmp_path / name
        with obs_events.EventLogWriter(str(path)) as writer:
            for event in events:
                writer.emit(event)
        paths.append(path)
    got, skipped, truncated = obs_events.read_events_detailed(paths[0])
    assert got == events
    assert (skipped, truncated) == (0, 0)
    # mtime=0 + empty name in the gzip header: byte-deterministic output.
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_gzip_log_append_is_multi_member(tmp_path):
    path = tmp_path / "log.jsonl.gz"
    for batch in (_sample_events(2), _sample_events(3)):
        with obs_events.EventLogWriter(str(path)) as writer:
            for event in batch:
                writer.emit(event)
    got, _ = obs_events.read_events(path)
    assert len(got) == 5


def test_gzip_truncated_tail_counted(tmp_path):
    path = tmp_path / "log.jsonl.gz"
    with obs_events.EventLogWriter(str(path)) as writer:
        for event in _sample_events(2):
            writer.emit(event)
    # Second member torn mid-write (campaign killed): cut its tail off.
    intact = path.read_bytes()
    with obs_events.EventLogWriter(str(path)) as writer:
        for event in _sample_events(50):
            writer.emit(event)
    full = path.read_bytes()
    path.write_bytes(full[: len(intact) + (len(full) - len(intact)) // 2])

    got, skipped, truncated = obs_events.read_events_detailed(path)
    assert truncated == 1
    assert got[:2] == _sample_events(2)  # readable prefix survives

    report = LogReport.from_paths([str(path)])
    assert report.truncated_tails == 1
    assert "truncated log tails: 1" in report.render_text()
    assert report.to_json()["truncated_tails"] == 1


def test_plain_and_gzip_logs_read_identically(tmp_path, prepared_g721):
    """A campaign logging to ``.jsonl.gz`` decompresses to the exact bytes
    of the plain log."""
    cfg = _base_config()
    _, plain = _campaign(prepared_g721, cfg, tmp_path / "log.jsonl")
    gz_path = tmp_path / "log.jsonl.gz"
    _campaign(prepared_g721, cfg, gz_path)
    with gzip.open(gz_path, "rb") as fh:
        assert fh.read() == plain


# ---------------------------------------------------------------------------
# progress printer EMA / ETA
# ---------------------------------------------------------------------------


def _masked_trial():
    return TrialResult(outcome=Outcome.MASKED, injection_cycle=1, bit=0)


def test_progress_printer_ema_and_eta():
    stream = io.StringIO()
    printer = ProgressPrinter(10, label="demo", stream=stream,
                              min_interval=0.0)
    for _ in range(3):
        printer(_masked_trial())
    assert printer.rate_ema is not None and printer.rate_ema > 0
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 3
    assert "trials/s" in lines[-1]
    assert "ema)" in lines[-1]
    assert "eta" in lines[-1]
    assert "masked=3" in lines[-1]


def test_progress_printer_final_line_drops_eta():
    stream = io.StringIO()
    printer = ProgressPrinter(10, stream=stream, min_interval=3600.0)
    for _ in range(4):
        printer(_masked_trial())
    # First trial prints immediately; 2-4 fall inside the rate limit.
    assert len(stream.getvalue().splitlines()) == 1
    printer.finish()
    final = stream.getvalue().splitlines()[-1]
    assert "[4/10]" in final
    assert final.rstrip().endswith("(done)")
    assert "eta" not in final
    before = stream.getvalue()
    printer.finish()  # idempotent
    assert stream.getvalue() == before


def test_progress_eta_formatting():
    fmt = ProgressPrinter._fmt_eta
    assert fmt(None) == ""
    assert fmt(65) == " eta 01:05"
    assert fmt(3 * 3600 + 62) == " eta 3:01:02"
