"""Unit tests for the service's durable queue machinery.

Covers the admission currency (:mod:`repro.serve.spec`), the append-only
journal + atomic state snapshots (:mod:`repro.serve.journal`), the pure
reducer and fair scheduler (:mod:`repro.serve.queue`), and the deterministic
retry jitter they lean on.  Everything here is pure file/state logic — no
campaigns run.
"""

from __future__ import annotations

import json

import pytest

from repro.faultinjection.resilience import backoff_delay, jittered_backoff
from repro.serve.journal import (
    Journal,
    load_state_snapshot,
    read_journal,
    save_state_snapshot,
)
from repro.serve.queue import FairScheduler, JobState, QueueState
from repro.serve.spec import CampaignSpec


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------


def test_spec_roundtrip_and_describe():
    spec = CampaignSpec(workload="g721dec", scheme="dup", trials=7, seed=3,
                        fault_model="burst", jobs=2, labels={"run": "x"})
    again = CampaignSpec.from_dict(spec.to_dict())
    assert again == spec
    assert "g721dec/dup" in spec.describe()


def test_spec_validation_rejects_garbage():
    ok = CampaignSpec(workload="g721dec", scheme="dup", trials=4)
    assert ok.validate() is None
    bad = [
        CampaignSpec(workload="nope", scheme="dup"),
        CampaignSpec(workload="g721dec", scheme="nope"),
        CampaignSpec(workload="g721dec", scheme="dup", trials=0),
        CampaignSpec(workload="g721dec", scheme="dup", trials=10**9),
        CampaignSpec(workload="g721dec", scheme="dup", fault_model="nope"),
        CampaignSpec(workload="g721dec", scheme="dup", jobs=-1),
    ]
    for spec in bad:
        assert spec.validate() is not None


def test_spec_from_dict_rejects_malformed_shapes():
    # Submissions are untrusted: wrong shapes must raise ValueError (the
    # admission path's quarantine currency), never AttributeError/TypeError
    with pytest.raises(ValueError):
        CampaignSpec.from_dict([1, 2])
    with pytest.raises(ValueError):
        CampaignSpec.from_dict("g721dec")
    with pytest.raises(ValueError):
        CampaignSpec.from_dict({"workload": "g721dec", "labels": 5})


def test_spec_key_is_semantic_only():
    base = CampaignSpec(workload="g721dec", scheme="dup", trials=7, seed=3)
    # jobs and labels are non-semantic; the tenant never enters the spec.
    assert base.key() == CampaignSpec(
        workload="g721dec", scheme="dup", trials=7, seed=3, jobs=4,
        labels={"who": "alice"},
    ).key()
    # an explicit default fault model collapses onto the implicit one
    assert base.key() == CampaignSpec(
        workload="g721dec", scheme="dup", trials=7, seed=3,
        fault_model="single_bit",
    ).key()
    # semantic fields fragment the key
    assert base.key() != CampaignSpec(
        workload="g721dec", scheme="dup", trials=7, seed=4
    ).key()
    assert base.key() != CampaignSpec(
        workload="g721dec", scheme="dup", trials=7, seed=3,
        fault_model="burst",
    ).key()


# ---------------------------------------------------------------------------
# journal + snapshots
# ---------------------------------------------------------------------------


def test_journal_append_read_roundtrip(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        journal.append({"type": "submit", "job": "a"})
        offset_after_first = journal.offset
        journal.append({"type": "start", "job": "a"})
    records, end = read_journal(path)
    assert [r["type"] for r in records] == ["submit", "start"]
    assert end == path.stat().st_size
    tail, _ = read_journal(path, offset_after_first)
    assert [r["type"] for r in tail] == ["start"]


def test_journal_tolerates_torn_tail_and_junk(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        journal.append({"type": "submit", "job": "a"})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("not json\n")
        fh.write('{"type": "start", "job": "a"}\n')
        fh.write('{"type": "done", "jo')  # torn tail: SIGKILL mid-append
    records, clean_end = read_journal(path)
    assert [r["type"] for r in records] == ["submit", "start"]
    # the torn bytes are not covered: a snapshot at clean_end replays them
    with open(path, "rb") as fh:
        assert b"done" in fh.read()[clean_end:]


def test_journal_reopen_truncates_torn_tail(tmp_path):
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        journal.append({"type": "submit", "job": "a"})
        journal.append({"type": "start", "job": "a"})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"type": "done", "jo')  # SIGKILL mid-append
    # The restarted service reopens the journal for appending; the first
    # post-crash record must not be glued onto the torn line, or a later
    # full-journal replay would silently lose it.
    with Journal(path) as journal:
        journal.append({"type": "interrupt", "job": "a"})
    records, clean_end = read_journal(path)
    assert [r["type"] for r in records] == ["submit", "start", "interrupt"]
    assert clean_end == path.stat().st_size


def test_journal_reopen_handles_torn_only_file(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_bytes(b'{"type": "sub')  # no complete line at all
    with Journal(path) as journal:
        journal.append({"type": "submit", "job": "a"})
    records, _ = read_journal(path)
    assert [r["type"] for r in records] == ["submit"]


def test_state_snapshot_roundtrip_and_corruption_quarantine(tmp_path):
    path = tmp_path / "state.json"
    state_doc = {"seq": 3, "jobs": []}
    save_state_snapshot(path, state_doc, journal_offset=123)
    loaded = load_state_snapshot(path)
    assert loaded == (state_doc, 123)

    document = json.loads(path.read_text())
    document["journal_offset"] = 999  # tamper without fixing the checksum
    path.write_text(json.dumps(document))
    assert load_state_snapshot(path) is None  # fall back to full replay
    assert not path.exists()
    assert [p.name for p in (tmp_path / "quarantine").iterdir()] == [
        "state.json"
    ]


# ---------------------------------------------------------------------------
# the reducer
# ---------------------------------------------------------------------------


def _submit(state, job_id, tenant="t", key="k"):
    state.apply({"type": "submit", "job": job_id, "tenant": tenant,
                 "spec": {}, "key": key})


def test_reducer_lifecycle_and_counters():
    state = QueueState()
    _submit(state, "a")
    state.apply({"type": "start", "job": "a", "pid": 42})
    assert state.jobs["a"].state == JobState.RUNNING
    assert state.jobs["a"].pid == 42
    state.apply({"type": "done", "job": "a"})
    assert state.jobs["a"].state == JobState.DONE
    assert state.jobs["a"].pid is None
    assert state.counters["submitted"] == 1
    assert state.counters["done"] == 1
    assert state.depth() == 0


def test_reducer_fail_requeues_and_charges_interrupt_does_not():
    state = QueueState()
    _submit(state, "a")
    state.apply({"type": "start", "job": "a", "pid": 1})
    state.apply({"type": "fail", "job": "a", "attempt": 1, "error": "boom"})
    assert state.jobs["a"].state == JobState.QUEUED
    assert state.jobs["a"].attempts == 1
    state.apply({"type": "start", "job": "a", "pid": 2})
    state.apply({"type": "interrupt", "job": "a"})
    assert state.jobs["a"].state == JobState.QUEUED
    assert state.jobs["a"].attempts == 1  # interrupts never charge


def test_reducer_dedup_follower_resolution():
    state = QueueState()
    _submit(state, "primary", key="same")
    state.apply({"type": "dedup", "job": "follower", "tenant": "u",
                 "spec": {}, "key": "same", "primary": "primary"})
    assert state.jobs["follower"].state == JobState.DEDUPED
    state.apply({"type": "start", "job": "primary"})
    state.apply({"type": "done", "job": "primary"})
    assert state.jobs["follower"].state == JobState.DONE

    # a follower arriving after the primary finished is done on arrival
    state.apply({"type": "dedup", "job": "late", "tenant": "u",
                 "spec": {}, "key": "same", "primary": "primary"})
    assert state.jobs["late"].state == JobState.DONE


def test_reducer_quarantine_poisons_followers_too():
    state = QueueState()
    _submit(state, "primary", key="same")
    state.apply({"type": "dedup", "job": "follower", "tenant": "u",
                 "spec": {}, "key": "same", "primary": "primary"})
    state.apply({"type": "quarantine", "job": "primary", "error": "tb"})
    assert state.jobs["primary"].state == JobState.QUARANTINED
    assert state.jobs["follower"].state == JobState.QUARANTINED
    assert "primary" in state.jobs["follower"].error


def test_reducer_ignores_unknown_records():
    state = QueueState()
    state.apply({"type": "from_the_future", "job": "x"})
    state.apply({"type": "done", "job": "never-submitted"})
    state.apply({"not even": "a type"})
    assert state.jobs == {}


def test_active_primary_skips_shed_and_quarantined():
    state = QueueState()
    state.apply({"type": "shed", "job": "s", "tenant": "t", "spec": {},
                 "key": "k", "reason": "full"})
    assert state.active_primary_for("k") is None
    _submit(state, "q", key="k")
    state.apply({"type": "quarantine", "job": "q", "error": "tb"})
    assert state.active_primary_for("k") is None
    _submit(state, "fresh", key="k")
    assert state.active_primary_for("k").id == "fresh"


def test_active_primary_chases_one_hop_through_followers():
    state = QueueState()
    _submit(state, "primary", key="k")
    state.apply({"type": "dedup", "job": "follower", "tenant": "u",
                 "spec": {}, "key": "k", "primary": "primary"})
    # the next same-key submission targets the primary, never the follower
    assert state.active_primary_for("k").id == "primary"


def test_state_snapshot_document_roundtrip():
    state = QueueState()
    _submit(state, "a", tenant="alice")
    state.apply({"type": "start", "job": "a", "pid": 9})
    state.apply({"type": "drain"})
    again = QueueState.from_doc(state.to_doc())
    assert again.to_doc() == state.to_doc()
    assert again.draining is True
    assert again.jobs["a"].state == JobState.RUNNING


def test_replay_equals_incremental_state(tmp_path):
    """The crash-recovery invariant: replaying the journal rebuilds the
    exact state the live service had."""
    records = [
        {"type": "submit", "job": "a", "tenant": "t1", "spec": {}, "key": "x"},
        {"type": "submit", "job": "b", "tenant": "t2", "spec": {}, "key": "y"},
        {"type": "dedup", "job": "c", "tenant": "t3", "spec": {}, "key": "x",
         "primary": "a"},
        {"type": "start", "job": "a", "pid": 1},
        {"type": "fail", "job": "a", "attempt": 1, "error": "boom"},
        {"type": "start", "job": "b", "pid": 2},
        {"type": "done", "job": "b"},
    ]
    live = QueueState()
    path = tmp_path / "journal.jsonl"
    with Journal(path) as journal:
        for record in records:
            journal.append(record)
            live.apply(record)
    replayed = QueueState()
    for record in read_journal(path)[0]:
        replayed.apply(record)
    assert replayed.to_doc() == live.to_doc()


# ---------------------------------------------------------------------------
# fair scheduling
# ---------------------------------------------------------------------------


def test_scheduler_round_robin_across_tenants():
    state = QueueState()
    for i in range(3):
        _submit(state, f"big{i}", tenant="big", key=f"b{i}")
    _submit(state, "small0", tenant="small", key="s0")
    scheduler = FairScheduler()
    order = []
    for _ in range(4):
        job = scheduler.pick(state, now=0.0)
        order.append(job.tenant)
        state.apply({"type": "start", "job": job.id})
        state.apply({"type": "done", "job": job.id})
    # the single-job tenant is served second, not behind the 3-job tenant
    assert order.count("small") == 1
    assert order.index("small") <= 1


def test_scheduler_rotates_past_absent_last_tenant():
    state = QueueState()
    _submit(state, "a0", tenant="a", key="ka")
    _submit(state, "c0", tenant="c", key="kc")
    scheduler = FairScheduler()
    # tenant "b" was served last and has nothing queued now; rotation must
    # continue past its sorted position, not reset to the alphabetically
    # first tenant
    scheduler._last_tenant = "b"
    assert scheduler.pick(state, now=0.0).tenant == "c"
    assert scheduler.pick(state, now=0.0).tenant == "a"


def test_scheduler_respects_backoff_delays():
    state = QueueState()
    _submit(state, "a", tenant="t", key="x")
    scheduler = FairScheduler()
    scheduler.delay("a", until=100.0)
    assert scheduler.pick(state, now=99.0) is None
    assert scheduler.pick(state, now=100.0).id == "a"
    scheduler.forget("a")
    assert scheduler.pick(state, now=0.0).id == "a"


def test_scheduler_oldest_job_first_within_tenant():
    state = QueueState()
    _submit(state, "first", tenant="t", key="1")
    _submit(state, "second", tenant="t", key="2")
    assert FairScheduler().pick(state, now=0.0).id == "first"


# ---------------------------------------------------------------------------
# deterministic retry jitter (satellite)
# ---------------------------------------------------------------------------


def test_jittered_backoff_is_deterministic_and_bounded():
    base = 0.5
    for attempt in (1, 2, 3, 5):
        pure = backoff_delay(base, attempt)
        delay = jittered_backoff(base, attempt, key="campaign-key")
        assert delay == jittered_backoff(base, attempt, key="campaign-key")
        assert 0.5 * pure <= delay <= pure


def test_jittered_backoff_desynchronizes_different_keys():
    delays = {
        jittered_backoff(0.5, 2, key=f"campaign-{i}") for i in range(16)
    }
    assert len(delays) > 8  # distinct campaigns spread out


def test_jittered_backoff_without_key_is_pure_exponential():
    for attempt in (1, 2, 3):
        assert jittered_backoff(0.5, attempt) == backoff_delay(0.5, attempt)
    assert jittered_backoff(0.0, 3, key="k") == 0.0
