"""Golden-IR regression tests.

Each workload's compiled (unprotected) IR is pinned as a snapshot under
``tests/goldens/``.  A mismatch means the frontend, mem2reg, or DCE changed
code generation — which silently shifts every measured number in
EXPERIMENTS.md.  If a change is intentional, regenerate the snapshots::

    python -c "
    from pathlib import Path
    from repro.workloads import all_workloads
    from repro.ir import module_to_str
    for w in all_workloads():
        Path('tests/goldens', w.name + '.ll').write_text(
            module_to_str(w.build_module()))
    "

…and re-run the benchmark harness so EXPERIMENTS.md stays truthful.
"""

import difflib
from pathlib import Path

import pytest

from repro.ir import module_to_str, parse_module, verify_module
from repro.workloads import all_workloads

GOLDENS = Path(__file__).parent / "goldens"
ALL = all_workloads()


@pytest.mark.parametrize("workload", ALL, ids=[w.name for w in ALL])
class TestGoldenIR:
    def test_compilation_matches_snapshot(self, workload):
        golden_path = GOLDENS / f"{workload.name}.ll"
        assert golden_path.exists(), f"missing golden for {workload.name}"
        current = module_to_str(workload.build_module())
        golden = golden_path.read_text()
        if current != golden:
            diff = "\n".join(
                difflib.unified_diff(
                    golden.splitlines(), current.splitlines(),
                    fromfile="golden", tofile="current", lineterm="", n=2,
                )
            )
            pytest.fail(
                f"{workload.name} IR changed (regenerate goldens if "
                f"intentional; see module docstring):\n{diff[:4000]}"
            )

    def test_snapshot_is_loadable(self, workload):
        """Goldens stay parseable: the textual IR round-trips."""
        module = parse_module((GOLDENS / f"{workload.name}.ll").read_text())
        verify_module(module)
        assert module.num_instructions() > 0
