"""Algorithmic correctness of the workload kernels against NumPy references.

The SCL kernels must implement the *real* algorithms, not arbitrary loops —
these tests check the interpreted kernel output against independent Python/
NumPy implementations (or against analytic properties of the algorithm).
"""

import math

import numpy as np
import pytest

from repro.fidelity import psnr, segmental_snr
from repro.sim import Interpreter
from repro.workloads import get_workload, synthetic_audio, synthetic_image
from repro.workloads.g721 import reference_encode as g721_encode
from repro.workloads.h264 import reference_encode as h264_encode
from repro.workloads.jpeg import ZIGZAG, reference_encode as jpeg_encode
from repro.workloads.mp3 import reference_encode as mp3_encode


class TestJpeg:
    def test_zigzag_is_a_permutation(self):
        assert sorted(ZIGZAG) == list(range(64))

    def test_kernel_encoder_matches_numpy_reference(self):
        """The SCL encoder and the NumPy reference produce the same stream."""
        w = get_workload("jpegenc")
        module = w.build_module()
        inputs = w.test_inputs()
        out, _ = w.run(module, inputs)
        n = int(out["stream_len"][0])
        kernel_stream = [int(v) for v in out["stream"][:n]]

        img = np.asarray(inputs["image"]).reshape(16, 16)
        ref_stream = jpeg_encode(img)
        assert kernel_stream == ref_stream

    def test_roundtrip_psnr_is_high(self):
        """enc -> dec recovers the image to codec-quality PSNR."""
        dec = get_workload("jpegdec")
        module = dec.build_module()
        inputs = dec.test_inputs()
        out, _ = dec.run(module, inputs)
        original = synthetic_image(16, 16, seed=24).reshape(-1)
        quality = psnr(original, out["image"][:256], peak=255)
        assert quality > 28.0  # standard-quality JPEG on a textured image


class TestG721:
    def test_kernel_encoder_matches_reference(self):
        w = get_workload("g721enc")
        module = w.build_module()
        inputs = w.test_inputs()
        out, _ = w.run(module, inputs)
        n = inputs["params"][0]
        expected = g721_encode(inputs["audio"][:n])
        assert [int(v) for v in out["codes"][:n]] == expected

    def test_codes_are_4bit(self):
        w = get_workload("g721enc")
        out, _ = w.run(w.build_module(), w.test_inputs())
        n = w.test_inputs()["params"][0]
        codes = out["codes"][:n]
        assert all(0 <= c <= 15 for c in codes)

    def test_decode_tracks_the_signal(self):
        """ADPCM at 4 bits/sample keeps a decent segmental SNR."""
        w = get_workload("g721dec")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        n = inputs["params"][0]
        original = synthetic_audio(n, seed=68)
        snr = segmental_snr(original, out["audio"][:n])
        assert snr > 10.0


class TestMp3:
    def test_kernel_encoder_matches_reference(self):
        w = get_workload("mp3enc")
        module = w.build_module()
        inputs = w.test_inputs()
        out, _ = w.run(module, inputs)
        nframes = inputs["params"][0]
        coefq, sfdelta = mp3_encode(inputs["audio"], nframes)
        assert [int(v) for v in out["coefq"][: len(coefq)]] == coefq
        assert [int(v) for v in out["sfdelta"][:nframes]] == sfdelta

    def test_scalefactor_chain_reconstructs(self):
        """Delta-coded scalefactors must sum back to positive scales."""
        w = get_workload("mp3enc")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        nframes = inputs["params"][0]
        sf = np.cumsum(out["sfdelta"][:nframes])
        assert (sf > 0).all()

    def test_decode_reconstructs_audio(self):
        w = get_workload("mp3dec")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        nframes = inputs["params"][0]
        n = nframes * 12
        original = synthetic_audio(n + 12, seed=84)[:n]
        # transform codec with coarse quantisation: expect rough tracking
        reconstructed = out["audio"][:n]
        correlation = np.corrcoef(original, reconstructed)[0, 1]
        assert correlation > 0.9


class TestH264:
    def test_kernel_encoder_matches_reference(self):
        w = get_workload("h264enc")
        module = w.build_module()
        inputs = w.test_inputs()
        out, _ = w.run(module, inputs)
        video = np.asarray(inputs["video"]).reshape(3, 16, 16)
        mvs, resq = h264_encode(video)
        assert [int(v) for v in out["mvs"][: len(mvs)]] == mvs
        assert [int(v) for v in out["resq"][: len(resq)]] == resq

    def test_motion_vectors_bounded(self):
        w = get_workload("h264enc")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        mvs = out["mvs"][: 3 * 4 * 2]
        assert all(-1 <= v <= 1 for v in mvs)

    def test_decoder_matches_encoder_reconstruction(self):
        """Closed-loop property: the decoder's frames equal the encoder's
        in-loop reconstruction (no drift)."""
        enc = get_workload("h264enc")
        dec = get_workload("h264dec")
        enc_inputs = enc.test_inputs()
        video = np.asarray(enc_inputs["video"]).reshape(3, 16, 16)
        mvs, resq = h264_encode(video)
        out, _ = dec.run(dec.build_module(),
                         {"mvs": mvs, "resq": resq, "params": [3]})
        decoded = np.asarray(out["video"][: 3 * 256]).reshape(3, 16, 16)
        quality = psnr(video.reshape(-1), decoded.reshape(-1), peak=255)
        assert quality > 25.0  # Q=8 quantiser: high-quality reconstruction


class TestVisionAndML:
    def test_segm_labels_in_range_and_nontrivial(self):
        w = get_workload("segm")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        npix = inputs["params"][0] * inputs["params"][1]
        labels = np.asarray(out["labels"][:npix])
        assert set(np.unique(labels)) <= {0, 1, 2}
        assert len(np.unique(labels)) >= 2  # actually segments something

    def test_segm_separates_dark_from_bright(self):
        w = get_workload("segm")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        width, height = inputs["params"]
        img = np.asarray(inputs["image"][: width * height])
        labels = np.asarray(out["labels"][: width * height])
        means = [img[labels == k].mean() for k in np.unique(labels)]
        assert max(means) - min(means) > 30  # clusters differ in intensity

    def test_tex_synth_output_drawn_from_sample(self):
        w = get_workload("tex_synth")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        osz = inputs["params"][0]
        sample_values = set(inputs["sample"])
        synthesized = out["out"][osz : osz * osz]  # beyond the seeded row
        assert all(v in sample_values for v in synthesized)

    def test_kmeans_recovers_true_clusters(self):
        """Points drawn from separated Gaussians must be grouped consistently
        with their generating cluster (up to label permutation)."""
        from repro.workloads.signals import gaussian_clusters

        w = get_workload("kmeans")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        n = inputs["params"][0]
        _, truth = gaussian_clusters(n, 4, 4, seed=163)
        labels = np.asarray(out["labels"][:n])
        # consistency: points sharing a true cluster share a kmeans label
        agreement = 0
        for k in range(4):
            members = labels[truth == k]
            agreement += (members == np.bincount(members).argmax()).mean()
        assert agreement / 4 > 0.9

    def test_svm_classifies_separable_data(self):
        from repro.workloads.signals import two_class_data

        w = get_workload("svm")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        n = inputs["params"][0]
        _, truth = two_class_data(n, 6, seed=183)
        predicted = np.asarray(out["labels"][:n])
        accuracy = (predicted == truth).mean()
        assert accuracy > 0.85

    def test_tiff2bw_full_contrast(self):
        w = get_workload("tiff2bw")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        npix = inputs["params"][0] * inputs["params"][1]
        bw = np.asarray(out["bw"][:npix])
        assert bw.min() == 0 and bw.max() == 255  # stretched to full range

    def test_tiff2bw_luminance_ordering(self):
        """Brighter RGB pixels map to brighter BW pixels."""
        w = get_workload("tiff2bw")
        inputs = w.test_inputs()
        out, _ = w.run(w.build_module(), inputs)
        width, height = inputs["params"]
        rgb = np.asarray(inputs["rgb"][: width * height * 3]).reshape(-1, 3)
        lum = (rgb[:, 0] * 77 + rgb[:, 1] * 151 + rgb[:, 2] * 28) >> 8
        bw = np.asarray(out["bw"][: width * height])
        # correlation between computed luminance and output is ~1
        assert np.corrcoef(lum, bw)[0, 1] > 0.99
