"""Experiment-driver tests on a reduced scope (2 workloads, few trials)."""

import pytest

from repro.experiments import (
    ExperimentCache,
    ExperimentSettings,
    crossval,
    false_positives,
    figure2,
    figure10,
    figure11,
    figure12,
    figure13,
    summary,
    tables,
)


@pytest.fixture(scope="module")
def cache():
    settings = ExperimentSettings(trials=6, workloads=("g721dec", "kmeans"))
    return ExperimentCache(settings)


class TestRunnerCache:
    def test_prepared_memoised(self, cache):
        a = cache.prepared("g721dec", "original")
        b = cache.prepared("g721dec", "original")
        assert a is b

    def test_campaign_memoised(self, cache):
        a = cache.campaign("g721dec", "original")
        b = cache.campaign("g721dec", "original")
        assert a is b
        assert a.num_trials == 6

    def test_runtime_overheads_positive(self, cache):
        assert cache.overhead("g721dec", "dup") > 0
        assert cache.overhead("g721dec", "full_dup") > cache.overhead("g721dec", "dup")

    def test_trials_env_override(self, monkeypatch):
        from repro.experiments.runner import default_trials

        monkeypatch.setenv("REPRO_TRIALS", "123")
        assert default_trials() == 123
        monkeypatch.setenv("REPRO_TRIALS", "junk")
        assert default_trials() == 60


class TestFigureDrivers:
    def test_figure2(self, cache):
        rows = figure2.compute(cache)
        assert [r.benchmark for r in rows] == ["g721dec", "kmeans", "average"]
        for r in rows:
            assert 0 <= r.sdc <= 1
            assert r.usdc_large + r.usdc_small + r.asdc == pytest.approx(r.sdc)
        assert "Figure 2" in figure2.report(cache)

    def test_figure10(self, cache):
        rows = figure10.compute(cache)
        assert all(r.static_instructions > 0 for r in rows)
        assert all(0 < r.frac_duplicated < 1 for r in rows)
        assert "Figure 10" in figure10.report(cache)

    def test_figure11(self, cache):
        rows = figure11.compute(cache)
        schemes = {r.scheme for r in rows}
        assert schemes == {"original", "dup", "dup_valchk"}
        for r in rows:
            total = r.masked + r.swdetect + r.hwdetect + r.failure + r.usdc
            assert total == pytest.approx(1.0)
        avgs = figure11.averages(cache)
        assert set(avgs) == schemes

    def test_figure12(self, cache):
        rows = figure12.compute(cache)
        avg = next(r for r in rows if r.benchmark == "average")
        assert avg.dup < avg.full_dup
        assert "Figure 12" in figure12.report(cache)

    def test_figure13(self, cache):
        rows = figure13.compute(cache)
        for r in rows:
            assert r.sdc == pytest.approx(r.asdc + r.usdc)
        assert "Figure 13" in figure13.report(cache)

    def test_false_positives(self, cache):
        rows = false_positives.compute(cache)
        assert all(r.guard_evaluations > 0 for r in rows)
        agg = false_positives.aggregate_instructions_per_failure(rows)
        assert agg > 0
        assert "False positives" in false_positives.report(cache)

    def test_crossval(self, cache):
        rows = crossval.compute(cache)
        # only kmeans (of the fixture's two) is a crossval benchmark
        assert {r.benchmark for r in rows} == {"kmeans"}
        deltas = crossval.mean_deltas(rows)
        assert all(0 <= v <= 1 for v in deltas.values())
        assert "cross-validation" in crossval.report(cache)

    def test_summary(self, cache):
        rows = summary.compute(cache)
        metrics = {r.metric for r in rows}
        assert any("overhead" in m for m in metrics)
        assert any("USDC" in m for m in metrics)
        assert "paper" in summary.report(cache)

    def test_tables(self):
        assert "jpegenc" in tables.table1_report()
        assert "Reorder Buffer" in tables.table2_report()


class TestCLI:
    def test_main_runs_tables(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure99"])
