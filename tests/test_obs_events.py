"""JSONL event schema: round-trips, schema version, corrupt-line tolerance."""

from __future__ import annotations

import json

from repro.faultinjection.outcomes import Outcome, TrialResult
from repro.obs.events import (
    SCHEMA_VERSION,
    EventLogWriter,
    cache_hit_event,
    campaign_begin_event,
    campaign_end_event,
    encode_event,
    merge_shards,
    read_events,
    shard_path,
    trial_event,
    write_shard,
)
from repro.sim.faults import InjectionPlan


def _trial(**overrides):
    base = dict(
        outcome=Outcome.SWDETECT, injection_cycle=100, bit=7, landed=True,
        was_live=True, event_cycle=150, value_name="v12", function="main",
        detector_guard=3, detector_kind="range", trap_kind="guard",
    )
    base.update(overrides)
    return TrialResult(**base)


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------


def test_trial_event_fields_and_version():
    plan = InjectionPlan(cycle=100, bit=7, seed=42)
    event = trial_event(3, plan, _trial())
    assert event["event"] == "trial"
    assert event["v"] == SCHEMA_VERSION
    assert event["i"] == 3
    assert event["cycle"] == 100 and event["bit"] == 7 and event["seed"] == 42
    assert event["outcome"] == "SWDetect"
    assert event["check"] == 3 and event["check_kind"] == "range"
    assert event["trap"] == "guard"
    assert event["latency"] == 50  # 150 - 100
    assert event["register"] == "v12" and event["function"] == "main"
    assert "wall_ms" not in event  # timing off by default


def test_trial_event_with_timing():
    plan = InjectionPlan(cycle=1, bit=0, seed=0)
    event = trial_event(0, plan, _trial(), wall_ms=12.3456)
    assert event["wall_ms"] == 12.346


def test_every_event_kind_carries_schema_version():
    class R:
        workload, scheme = "w", "s"
        golden_instructions = 10
        golden_guard_failures = golden_guard_evaluations = 0
        num_trials = 0

        def counts(self):
            return {}

    for event in (
        campaign_begin_event(R()),
        campaign_end_event(R()),
        cache_hit_event("w", "s", "abc", {"created_unix": 1.0}),
        trial_event(0, InjectionPlan(cycle=1, bit=0, seed=0), _trial()),
    ):
        assert event["v"] == SCHEMA_VERSION


def test_begin_event_excludes_jobs_and_timestamps():
    class R:
        workload, scheme = "w", "s"
        golden_instructions = 10
        golden_guard_failures = golden_guard_evaluations = 0

    event = campaign_begin_event(R())
    assert "jobs" not in event
    assert not any("time" in k or "stamp" in k for k in event)


# ---------------------------------------------------------------------------
# encoding round-trip
# ---------------------------------------------------------------------------


def test_encode_is_canonical_and_round_trips():
    event = {"b": 1, "a": [1, 2], "event": "trial", "v": SCHEMA_VERSION}
    line = encode_event(event)
    assert line.endswith("\n")
    assert line == encode_event(dict(reversed(list(event.items()))))  # sorted keys
    assert json.loads(line) == event


def test_writer_reader_round_trip(tmp_path):
    path = tmp_path / "log.jsonl"
    plan = InjectionPlan(cycle=5, bit=1, seed=9)
    original = [trial_event(i, plan, _trial()) for i in range(4)]
    with EventLogWriter(str(path)) as writer:
        for event in original:
            writer.emit(event)
    events, skipped = read_events(path)
    assert skipped == 0
    assert events == original


def test_writer_appends_across_openings(tmp_path):
    path = tmp_path / "log.jsonl"
    for _ in range(2):
        with EventLogWriter(str(path)) as writer:
            writer.emit({"event": "x", "v": SCHEMA_VERSION})
    events, _ = read_events(path)
    assert len(events) == 2


# ---------------------------------------------------------------------------
# corrupt-line tolerance
# ---------------------------------------------------------------------------


def test_reader_skips_corrupt_lines(tmp_path):
    path = tmp_path / "log.jsonl"
    good = encode_event({"event": "trial", "v": SCHEMA_VERSION, "i": 0})
    path.write_text(
        good
        + "{truncated mid-wri\n"
        + "not json at all\n"
        + "\n"                      # blank lines are fine, not counted
        + '["a", "list", "not", "an", "event"]\n'
        + '{"valid_json": "but no event field"}\n'
        + good
    )
    events, skipped = read_events(path)
    assert len(events) == 2
    assert skipped == 4


def test_reader_preserves_unknown_versions(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text(encode_event({"event": "trial", "v": 999, "future": True}))
    events, skipped = read_events(path)
    assert skipped == 0
    assert events[0]["v"] == 999


# ---------------------------------------------------------------------------
# shards
# ---------------------------------------------------------------------------


def test_shard_names_sort_in_plan_order(tmp_path):
    base = str(tmp_path / "log.jsonl")
    indices = [0, 32, 64, 9999999]
    names = [shard_path(base, i) for i in indices]
    assert names == sorted(names)


def test_write_and_merge_shards_in_plan_order(tmp_path):
    base = str(tmp_path / "log.jsonl")
    # written out of order, merged back in plan order
    write_shard(base, 2, [{"event": "trial", "v": 1, "i": 2}])
    write_shard(base, 0, [{"event": "trial", "v": 1, "i": 0}])
    write_shard(base, 1, [{"event": "trial", "v": 1, "i": 1}])
    with EventLogWriter(base) as writer:
        merged = merge_shards(writer)
    assert merged == 3
    events, _ = read_events(base)
    assert [e["i"] for e in events] == [0, 1, 2]
    assert not list(tmp_path.glob("*.shard-*"))  # shards cleaned up
