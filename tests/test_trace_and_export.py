"""Tests for the execution tracer and campaign JSON export."""

import json

import pytest

from repro.faultinjection import CampaignConfig, run_campaign
from repro.sim import InjectionPlan, Tracer, first_divergence, trace_run
from repro.workloads import get_workload
from tests.conftest import build_sum_loop


class TestTracer:
    def test_records_value_events(self, sum_loop):
        module, h = sum_loop
        tracer, trap = trace_run(module, inputs={"src": list(range(16))})
        assert trap is None
        assert len(tracer) > 0
        history = tracer.history_of(h["acc"].name)
        # one phi commit per header entry: 16 iterations + the exit check
        assert len(history) == 17
        # the accumulator history is the recurrence acc' = 3*acc + i
        values = [e.value for e in history]
        assert values[0] == 7
        assert values[1] == 7 * 3 + 0

    def test_bounded_window(self, sum_loop):
        module, _ = sum_loop
        tracer, _ = trace_run(module, inputs={"src": list(range(16))}, limit=50)
        assert len(tracer) == 50

    def test_tail(self, sum_loop):
        module, _ = sum_loop
        tracer, _ = trace_run(module, inputs={"src": list(range(16))})
        assert len(tracer.tail(5)) == 5
        assert str(tracer.tail(1)[0]).startswith("[")

    def test_divergence_found_after_injection(self, sum_loop):
        module, _ = sum_loop
        inputs = {"src": list(range(16))}
        golden, _ = trace_run(module, inputs=inputs)
        for seed in range(20):
            faulty, trap = trace_run(
                module, inputs=inputs,
                injection=InjectionPlan(cycle=60, bit=20, seed=seed),
            )
            div = first_divergence(golden.events, faulty.events)
            if div is not None:
                g, f = div
                assert g.name == f.name  # same static instruction, new value
                assert g.value != f.value
                break
        else:
            pytest.fail("no divergence observed across the sweep")

    def test_identical_runs_have_no_divergence(self, sum_loop):
        module, _ = sum_loop
        inputs = {"src": list(range(16))}
        a, _ = trace_run(module, inputs=inputs)
        b, _ = trace_run(module, inputs=inputs)
        assert first_divergence(a.events, b.events) is None

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)


class TestCampaignExport:
    def test_json_round_trip(self, tmp_path, fast_campaign_config):
        result = run_campaign(get_workload("tiff2bw"), "dup", fast_campaign_config)
        path = tmp_path / "campaign.json"
        result.save(path)

        data = json.loads(path.read_text())
        assert data["workload"] == "tiff2bw"
        assert data["scheme"] == "dup"
        assert data["trials"] == fast_campaign_config.trials
        assert len(data["records"]) == fast_campaign_config.trials
        fr = data["fractions"]
        assert abs(
            fr["masked"] + fr["swdetect"] + fr["hwdetect"]
            + fr["failure"] + fr["usdc"] - 1.0
        ) < 1e-9
        outcomes = {r["outcome"] for r in data["records"]}
        assert outcomes <= {"Masked", "SWDetect", "HWDetect", "Failure", "USDC"}
