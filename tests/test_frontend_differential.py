"""Differential property testing: random SCL expressions vs a Python model.

Hypothesis generates random integer expression trees; each is rendered as SCL
source, compiled through the full pipeline (parse → codegen → mem2reg → DCE),
interpreted, and compared against an independent Python evaluator implementing
C semantics (i32 wrap, truncating division, masked shifts).  Any divergence
in the lexer, parser, code generator, SSA construction, or interpreter
arithmetic shows up as a counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir import I32
from repro.sim import ArithmeticTrap, Interpreter

MASK = 0xFFFFFFFF


def wrap(v: int) -> int:
    return I32.wrap(v)


@dataclass(frozen=True)
class Node:
    op: str                   # 'lit' | 'var' | binary operator | unary
    value: int = 0
    children: tuple = ()

    def render(self) -> str:
        if self.op == "lit":
            return str(self.value) if self.value >= 0 else f"(0 - {-self.value})"
        if self.op == "var":
            return f"v{self.value}"
        if self.op in ("-u", "~", "!"):
            sym = {"-u": "-", "~": "~", "!": "!"}[self.op]
            return f"({sym}{self.children[0].render()})"
        a, b = self.children
        return f"({a.render()} {self.op} {b.render()})"

    def evaluate(self, env: List[int]) -> Optional[int]:
        """Python model with C semantics; None = would trap (div by zero)."""
        if self.op == "lit":
            return wrap(self.value)
        if self.op == "var":
            return env[self.value]
        if self.op == "-u":
            v = self.children[0].evaluate(env)
            return None if v is None else wrap(-v)
        if self.op == "~":
            v = self.children[0].evaluate(env)
            return None if v is None else wrap(~v)
        if self.op == "!":
            v = self.children[0].evaluate(env)
            return None if v is None else (0 if v else 1)
        a = self.children[0].evaluate(env)
        b = self.children[1].evaluate(env)
        if a is None or b is None:
            return None
        op = self.op
        if op == "+":
            return wrap(a + b)
        if op == "-":
            return wrap(a - b)
        if op == "*":
            return wrap(a * b)
        if op == "/":
            if b == 0:
                return None
            q = abs(a) // abs(b)
            return wrap(-q if (a < 0) != (b < 0) else q)
        if op == "%":
            if b == 0:
                return None
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            return wrap(a - q * b)
        if op == "&":
            return wrap(a & b)
        if op == "|":
            return wrap(a | b)
        if op == "^":
            return wrap(a ^ b)
        if op == "<<":
            return wrap(a << (b & 31))
        if op == ">>":
            return wrap(a >> (b & 31))
        if op == "<":
            return 1 if a < b else 0
        if op == "<=":
            return 1 if a <= b else 0
        if op == ">":
            return 1 if a > b else 0
        if op == ">=":
            return 1 if a >= b else 0
        if op == "==":
            return 1 if a == b else 0
        if op == "!=":
            return 1 if a != b else 0
        raise AssertionError(f"unknown op {op}")


NUM_VARS = 4

_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
           "<", "<=", ">", ">=", "==", "!="]


def _exprs(depth: int):
    leaf = st.one_of(
        st.integers(min_value=-1000, max_value=1000).map(
            lambda v: Node("lit", value=v)
        ),
        st.integers(min_value=0, max_value=NUM_VARS - 1).map(
            lambda i: Node("var", value=i)
        ),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    unary = st.tuples(st.sampled_from(["-u", "~", "!"]), sub).map(
        lambda t: Node(t[0], children=(t[1],))
    )
    binary = st.tuples(st.sampled_from(_BINOPS), sub, sub).map(
        lambda t: Node(t[0], children=(t[1], t[2]))
    )
    return st.one_of(leaf, unary, binary)


expressions = _exprs(3)
environments = st.lists(
    st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    min_size=NUM_VARS, max_size=NUM_VARS,
)


class TestDifferential:
    @given(expressions, environments)
    @settings(max_examples=120, deadline=None)
    def test_scl_matches_python_model(self, expr, env):
        decls = "\n".join(
            f"    int v{i} = vars[{i}];" for i in range(NUM_VARS)
        )
        src = f"""
        input int vars[{NUM_VARS}];
        output int out[1];
        void main() {{
{decls}
            out[0] = {expr.render()};
        }}
        """
        module = compile_source(src)
        interp = Interpreter(module)
        expected = expr.evaluate(list(env))
        if expected is None:
            with pytest.raises(ArithmeticTrap):
                interp.run(inputs={"vars": list(env)})
            return
        interp.run(inputs={"vars": list(env)})
        got = interp.read_global("out")[0]
        assert got == expected, f"{expr.render()} with {list(env)}"

    @given(expressions, environments)
    @settings(max_examples=60, deadline=None)
    def test_constant_folding_agrees_with_execution(self, expr, env):
        """Folding the same expression built from constants must equal the
        interpreted result (exercises repro.opt.constfold's semantics)."""
        from repro.opt import fold_constants_module

        literals = ", ".join(str(v) for v in env)
        decls = "\n".join(
            f"    int v{i} = tab[{i}];" for i in range(NUM_VARS)
        )
        src = f"""
        int tab[{NUM_VARS}] = {{ {literals} }};
        output int out[1];
        void main() {{
{decls}
            out[0] = {expr.render()};
        }}
        """
        expected = expr.evaluate(list(env))
        if expected is None:
            return  # folding leaves trapping ops alone; nothing to compare
        module = compile_source(src)
        fold_constants_module(module)
        interp = Interpreter(module)
        interp.run()
        assert interp.read_global("out")[0] == expected
