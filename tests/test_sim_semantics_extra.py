"""Extra interpreter-semantics coverage: intrinsics, casts, select, fcmp."""

import math

import pytest

from repro.ir import (
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    Constant,
    IRBuilder,
    Module,
)
from repro.sim import Interpreter


def run_value(build):
    """build(b) returns the value to ret; returns the executed result."""
    m = Module()
    fn = m.add_function("main", I64)  # wide enough for any int result

    class _Any:  # allow returning any type by fixing fn.return_type lazily
        pass

    b = IRBuilder(fn.add_block("entry"))
    v = build(b)
    fn.return_type = v.type
    b.ret(v)
    return Interpreter(m).run().return_value


class TestIntrinsics:
    @pytest.mark.parametrize("name,args,expected", [
        ("sqrt", (16.0,), 4.0),
        ("sqrt", (-1.0,), math.nan),
        ("exp", (0.0,), 1.0),
        ("exp", (1e9,), math.inf),
        ("log", (1.0,), 0.0),
        ("log", (0.0,), -math.inf),
        ("log", (-2.0,), math.nan),
        ("fabs", (-2.5,), 2.5),
        ("floor", (2.9,), 2.0),
        ("floor", (-2.1,), -3.0),
        ("sin", (0.0,), 0.0),
        ("cos", (0.0,), 1.0),
        ("pow", (2.0, 10.0), 1024.0),
        ("min", (2.0, 3.0), 2.0),
        ("max", (2.0, 3.0), 3.0),
    ])
    def test_float_intrinsics(self, name, args, expected):
        result = run_value(
            lambda b: b.intrinsic(name, [Constant(F64, a) for a in args])
        )
        if isinstance(expected, float) and math.isnan(expected):
            assert math.isnan(result)
        else:
            assert result == expected

    @pytest.mark.parametrize("name,args,expected", [
        ("abs", (-7,), 7),
        ("min", (-7, 3), -7),
        ("max", (-7, 3), 3),
    ])
    def test_int_intrinsics(self, name, args, expected):
        result = run_value(
            lambda b: b.intrinsic(name, [Constant(I32, a) for a in args])
        )
        assert result == expected


class TestCasts:
    def test_trunc_and_extend(self):
        assert run_value(lambda b: b.cast("trunc", Constant(I32, 0x1FF), I8)) == -1
        assert run_value(lambda b: b.cast("sext", Constant(I8, -1), I32)) == -1
        assert run_value(lambda b: b.cast("zext", Constant(I8, -1), I32)) == 255

    def test_sitofp_fptosi(self):
        assert run_value(lambda b: b.sitofp(Constant(I32, -3))) == -3.0
        assert run_value(lambda b: b.fptosi(Constant(F64, -3.9))) == -3

    def test_fptosi_saturates(self):
        assert run_value(lambda b: b.fptosi(Constant(F64, 1e20))) == (1 << 31) - 1
        assert run_value(lambda b: b.fptosi(Constant(F64, -1e20))) == -(1 << 31)
        assert run_value(lambda b: b.fptosi(Constant(F64, math.nan))) == 0

    def test_i16_arithmetic_wraps(self):
        result = run_value(
            lambda b: b.binop("add", Constant(I16, 32767), Constant(I16, 1))
        )
        assert result == -32768


class TestSelectAndFcmp:
    def test_select_arms(self):
        assert run_value(
            lambda b: b.select(Constant(I1, 1), Constant(I32, 5), Constant(I32, 9))
        ) == 5
        assert run_value(
            lambda b: b.select(Constant(I1, 0), Constant(I32, 5), Constant(I32, 9))
        ) == 9

    @pytest.mark.parametrize("pred,a,b_,expected", [
        ("oeq", 1.0, 1.0, 1),
        ("one", 1.0, 2.0, 1),
        ("olt", 1.0, 2.0, 1),
        ("ogt", 1.0, 2.0, 0),
        ("ole", 2.0, 2.0, 1),
        ("oge", 1.0, 2.0, 0),
    ])
    def test_fcmp_predicates(self, pred, a, b_, expected):
        assert run_value(
            lambda b: b.fcmp(pred, Constant(F64, a), Constant(F64, b_))
        ) == expected

    def test_fcmp_nan_is_unordered(self):
        # ordered predicates are false when either side is NaN...
        assert run_value(
            lambda b: b.fcmp("olt", Constant(F64, math.nan), Constant(F64, 1.0))
        ) == 0
        assert run_value(
            lambda b: b.fcmp("oeq", Constant(F64, math.nan), Constant(F64, math.nan))
        ) == 0
        # ...except `one`, which also requires neither side to be NaN
        assert run_value(
            lambda b: b.fcmp("one", Constant(F64, math.nan), Constant(F64, 1.0))
        ) == 0


class TestFrem:
    def test_frem_matches_fmod(self):
        assert run_value(
            lambda b: b.binop("frem", Constant(F64, 7.5), Constant(F64, 2.0))
        ) == math.fmod(7.5, 2.0)

    def test_frem_by_zero_is_nan(self):
        assert math.isnan(run_value(
            lambda b: b.binop("frem", Constant(F64, 1.0), Constant(F64, 0.0))
        ))


class TestUnsignedOps:
    def test_udiv_urem(self):
        # -1 as unsigned i32 is 4294967295
        assert run_value(
            lambda b: b.binop("udiv", Constant(I32, -1), Constant(I32, 2))
        ) == 0x7FFFFFFF
        assert run_value(
            lambda b: b.binop("urem", Constant(I32, -1), Constant(I32, 16))
        ) == 15

    @pytest.mark.parametrize("pred,a,b_,expected", [
        ("ult", -1, 1, 0),   # unsigned: 0xFFFFFFFF > 1
        ("ugt", -1, 1, 1),
        ("ule", 1, 1, 1),
        ("uge", 0, -1, 0),
    ])
    def test_unsigned_comparisons(self, pred, a, b_, expected):
        assert run_value(
            lambda b: b.icmp(pred, Constant(I32, a), Constant(I32, b_))
        ) == expected
