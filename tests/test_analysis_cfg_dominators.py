"""Unit tests for CFG utilities and the dominator analysis."""

import pytest

from repro.analysis import (
    DominatorTree,
    predecessors_map,
    reachable_blocks,
    reverse_postorder,
    split_critical_edges,
)
from repro.ir import I1, I32, IRBuilder, Module, verify_function
from tests.conftest import build_sum_loop


def build_diamond():
    """entry -> (left | right) -> merge"""
    m = Module()
    fn = m.add_function("f", I32, [(I1, "c")])
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    merge = fn.add_block("merge")
    b = IRBuilder(entry)
    b.condbr(fn.args[0], left, right)
    b.set_block(left)
    lv = b.add(b.const(1), b.const(2))
    b.br(merge)
    b.set_block(right)
    rv = b.add(b.const(3), b.const(4))
    b.br(merge)
    b.set_block(merge)
    phi = b.phi(I32)
    phi.add_incoming(lv, left)
    phi.add_incoming(rv, right)
    b.ret(phi)
    return fn, entry, left, right, merge


class TestOrderings:
    def test_rpo_starts_at_entry(self, sum_loop):
        _, h = sum_loop
        rpo = reverse_postorder(h["fn"])
        assert rpo[0] is h["entry"]
        assert set(b.name for b in rpo) == {"entry", "header", "body", "exit"}

    def test_rpo_visits_header_before_body(self, sum_loop):
        _, h = sum_loop
        rpo = reverse_postorder(h["fn"])
        assert rpo.index(h["header"]) < rpo.index(h["body"])

    def test_unreachable_blocks_omitted(self, sum_loop):
        _, h = sum_loop
        dead = h["fn"].add_block("dead")
        IRBuilder(dead).ret(IRBuilder.const(0))
        assert id(dead) not in reachable_blocks(h["fn"])

    def test_predecessors_map(self, sum_loop):
        _, h = sum_loop
        preds = predecessors_map(h["fn"])
        assert set(preds[h["header"]]) == {h["entry"], h["body"]}
        assert preds[h["entry"]] == []


class TestDominators:
    def test_diamond_idoms(self):
        fn, entry, left, right, merge = build_diamond()
        dt = DominatorTree.compute(fn)
        assert dt.immediate_dominator(left) is entry
        assert dt.immediate_dominator(right) is entry
        assert dt.immediate_dominator(merge) is entry
        assert dt.immediate_dominator(entry) is None

    def test_dominates_is_reflexive_and_transitive(self, sum_loop):
        _, h = sum_loop
        dt = DominatorTree.compute(h["fn"])
        assert dt.dominates(h["entry"], h["entry"])
        assert dt.dominates(h["entry"], h["body"])
        assert dt.dominates(h["header"], h["exit"])
        assert not dt.dominates(h["body"], h["exit"])
        assert dt.strictly_dominates(h["entry"], h["body"])
        assert not dt.strictly_dominates(h["body"], h["body"])

    def test_loop_idoms(self, sum_loop):
        _, h = sum_loop
        dt = DominatorTree.compute(h["fn"])
        assert dt.immediate_dominator(h["header"]) is h["entry"]
        assert dt.immediate_dominator(h["body"]) is h["header"]
        assert dt.immediate_dominator(h["exit"]) is h["header"]

    def test_diamond_frontier(self):
        fn, entry, left, right, merge = build_diamond()
        dt = DominatorTree.compute(fn)
        df = dt.dominance_frontier()
        assert df[left] == {merge}
        assert df[right] == {merge}
        assert df[entry] == set()

    def test_loop_frontier_includes_header(self, sum_loop):
        _, h = sum_loop
        dt = DominatorTree.compute(h["fn"])
        df = dt.dominance_frontier()
        # the body's frontier is the loop header (back edge join)
        assert h["header"] in df[h["body"]]
        assert h["header"] in df[h["header"]]

    def test_dominated_by_subtree(self, sum_loop):
        _, h = sum_loop
        dt = DominatorTree.compute(h["fn"])
        subtree = dt.dominated_by(h["header"])
        assert set(subtree) == {h["header"], h["body"], h["exit"]}


class TestCriticalEdges:
    def test_split_critical_edges(self, sum_loop):
        module, h = sum_loop
        # header (2 succs) -> exit (1 pred): not critical.
        # Make exit have two preds to create a critical edge.
        fn = h["fn"]
        other = fn.add_block("other")
        b = IRBuilder(other)
        b.br(h["exit"])
        # header->exit is now critical (multi-succ -> multi-pred)
        n = split_critical_edges(fn)
        assert n == 1
        verify_function(fn)

    def test_no_critical_edges_no_split(self):
        fn, *_ = build_diamond()
        assert split_critical_edges(fn) == 0
