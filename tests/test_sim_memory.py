"""Unit tests for the segmented memory model."""

import math

import pytest

from repro.ir import F64, I8, I16, I32, I64, PTR
from repro.sim import Memory, MemoryTrap


@pytest.fixture
def mem():
    return Memory()


class TestMapping:
    def test_segments_do_not_overlap(self, mem):
        a = mem.map_segment("a", 100)
        b = mem.map_segment("b", 100)
        assert a.base != b.base
        assert abs(a.base - b.base) >= 100

    def test_address_zero_never_mapped(self, mem):
        mem.map_segment("a", 100)
        with pytest.raises(MemoryTrap) as exc:
            mem.load(I32, 0)
        assert exc.value.kind == "null"

    def test_negative_address_traps(self, mem):
        with pytest.raises(MemoryTrap):
            mem.load(I32, -8)

    def test_unmapped_address_traps(self, mem):
        seg = mem.map_segment("a", 100)
        with pytest.raises(MemoryTrap) as exc:
            mem.load(I32, seg.base + (1 << 30))
        assert exc.value.kind == "unmapped"

    def test_out_of_bounds_within_stride_traps(self, mem):
        seg = mem.map_segment("a", 100)
        with pytest.raises(MemoryTrap) as exc:
            mem.load(I32, seg.base + 100)
        assert exc.value.kind == "out-of-bounds"

    def test_straddling_end_traps(self, mem):
        seg = mem.map_segment("a", 10)
        with pytest.raises(MemoryTrap):
            mem.load(I64, seg.base + 4)  # 8 bytes from offset 4 of 10

    def test_large_segment_spans_strides(self, mem):
        seg = mem.map_segment("big", 3 << 20)
        mem.store(I32, seg.base + (2 << 20), 77)
        assert mem.load(I32, seg.base + (2 << 20)) == 77

    def test_unmap(self, mem):
        seg = mem.map_segment("a", 100)
        mem.unmap_segment(seg)
        with pytest.raises(MemoryTrap):
            mem.load(I32, seg.base)

    def test_segment_at(self, mem):
        seg = mem.map_segment("a", 100)
        assert mem.segment_at(seg.base + 50) is seg
        assert mem.segment_at(seg.base + 100) is None


class TestTypedAccess:
    def test_int_round_trip(self, mem):
        seg = mem.map_segment("a", 64)
        for t, v in [(I8, -5), (I16, -1234), (I32, -123456), (I64, -(1 << 40))]:
            mem.store(t, seg.base, v)
            assert mem.load(t, seg.base) == v

    def test_int_wraps_on_store(self, mem):
        seg = mem.map_segment("a", 64)
        mem.store(I8, seg.base, 0x1FF)
        assert mem.load(I8, seg.base) == -1

    def test_float_round_trip(self, mem):
        seg = mem.map_segment("a", 64)
        mem.store(F64, seg.base, 3.141592653589793)
        assert mem.load(F64, seg.base) == 3.141592653589793

    def test_float_nan_round_trip(self, mem):
        seg = mem.map_segment("a", 64)
        mem.store(F64, seg.base, math.nan)
        assert math.isnan(mem.load(F64, seg.base))

    def test_pointer_round_trip(self, mem):
        seg = mem.map_segment("a", 64)
        mem.store(PTR, seg.base, 0xDEADBEEF)
        assert mem.load(PTR, seg.base) == 0xDEADBEEF

    def test_little_endian_layout(self, mem):
        seg = mem.map_segment("a", 64)
        mem.store(I32, seg.base, 0x01020304)
        assert seg.data[0:4] == bytes([4, 3, 2, 1])

    def test_array_helpers(self, mem):
        seg = mem.map_segment("a", 64)
        mem.write_array(seg, I32, [1, -2, 3])
        assert mem.read_array(seg, I32, 3) == [1, -2, 3]
