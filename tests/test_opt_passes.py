"""Tests for the generic optimizer passes (DCE, simplifycfg, constfold)."""

import numpy as np
import pytest

from repro.frontend import compile_source
from repro.frontend.codegen import CodeGenerator
from repro.frontend.mem2reg import promote_module
from repro.frontend.parser import parse
from repro.ir import (
    Br,
    CondBr,
    Constant,
    I1,
    I32,
    IRBuilder,
    Module,
    verify_module,
)
from repro.opt import (
    eliminate_dead_code,
    fold_constants,
    fold_constants_module,
    simplify_cfg,
    simplify_cfg_module,
)
from repro.sim import Interpreter
from repro.workloads import get_workload


def unoptimized(src: str) -> Module:
    module = CodeGenerator(parse(src), "t").generate()
    promote_module(module)
    return module


class TestDCE:
    def test_pure_dead_chain_removed(self):
        m = Module()
        fn = m.add_function("main", I32)
        b = IRBuilder(fn.add_block("entry"))
        dead1 = b.add(b.const(1), b.const(2))
        dead2 = b.mul(dead1, b.const(3))
        live = b.add(b.const(10), b.const(20))
        b.ret(live)
        removed = eliminate_dead_code(fn)
        assert removed == 2
        verify_module(m)
        assert Interpreter(m).run().return_value == 30

    def test_side_effects_kept(self):
        src = """
        output int out[1];
        void main() { out[0] = 7; int unused = out[0] * 2; }
        """
        module = unoptimized(src)
        eliminate_dead_code(module.function("main"))
        verify_module(module)
        interp = Interpreter(module)
        interp.run()
        assert interp.read_global("out")[0] == 7

    def test_guards_survive(self):
        from repro.transforms import apply_scheme
        from repro.opt import eliminate_dead_code_module
        from tests.conftest import build_sum_loop
        from repro.ir import GuardEq

        module, _ = build_sum_loop()
        apply_scheme(module, "dup")
        eliminate_dead_code_module(module)
        verify_module(module)
        guards = [
            i for f in module.functions.values()
            for i in f.instructions() if isinstance(i, GuardEq)
        ]
        assert len(guards) == 2  # guards are roots: shadow chains stay live


class TestSimplifyCfg:
    def test_merges_linear_chain(self):
        m = Module()
        fn = m.add_function("main", I32)
        a = fn.add_block("a")
        c = fn.add_block("c")
        b = IRBuilder(a)
        v = b.add(b.const(1), b.const(2))
        b.br(c)
        b.set_block(c)
        w = b.add(v, b.const(10))
        b.ret(w)
        removed = simplify_cfg(fn)
        assert removed == 1
        assert len(fn.blocks) == 1
        verify_module(m)
        assert Interpreter(m).run().return_value == 13

    def test_folds_constant_branch_and_removes_dead_block(self):
        m = Module()
        fn = m.add_function("main", I32)
        entry = fn.add_block("entry")
        then_bb = fn.add_block("then")
        else_bb = fn.add_block("else")
        b = IRBuilder(entry)
        b.condbr(Constant(I1, 1), then_bb, else_bb)
        b.set_block(then_bb)
        b.ret(b.const(1))
        b.set_block(else_bb)
        b.ret(b.const(2))
        simplify_cfg(fn)
        verify_module(m)
        assert len(fn.blocks) == 1
        assert Interpreter(m).run().return_value == 1

    def test_phi_rewired_through_merge(self):
        src = """
        input int x[1];
        output int out[1];
        void main() {
            int v = 0;
            if (x[0] > 0) { v = 10; } else { v = 20; }
            out[0] = v + 1;
        }
        """
        module = unoptimized(src)
        fn = module.function("main")
        simplify_cfg(fn)
        verify_module(module)
        for flag, expected in ((1, 11), (-1, 21)):
            interp = Interpreter(module)
            interp.run(inputs={"x": [flag]})
            assert interp.read_global("out")[0] == expected

    def test_workload_semantics_preserved(self):
        w = get_workload("tiff2bw")
        base = w.build_module()
        base_out, base_run = w.run(base, w.test_inputs())

        module = w.build_module()
        removed = simplify_cfg_module(module)
        assert removed > 0  # codegen's for-loops leave mergeable chains
        verify_module(module)
        out, run = w.run(module, w.test_inputs())
        for k in base_out:
            assert np.array_equal(base_out[k], out[k])
        assert run.instructions < base_run.instructions  # fewer branches


class TestConstFold:
    def test_folds_arithmetic_chain(self):
        m = Module()
        fn = m.add_function("main", I32)
        b = IRBuilder(fn.add_block("entry"))
        v1 = b.add(b.const(2), b.const(3))
        v2 = b.mul(v1, b.const(4))
        b.ret(v2)
        folded = fold_constants(fn)
        assert folded == 2
        verify_module(m)
        assert Interpreter(m).run().return_value == 20

    def test_wraps_like_runtime(self):
        m = Module()
        fn = m.add_function("main", I32)
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(b.const(2**31 - 1), b.const(1))
        b.ret(v)
        fold_constants(fn)
        assert Interpreter(m).run().return_value == -(2**31)

    def test_trapping_division_left_alone(self):
        from repro.sim import ArithmeticTrap

        m = Module()
        fn = m.add_function("main", I32)
        b = IRBuilder(fn.add_block("entry"))
        v = b.sdiv(b.const(1), b.const(0))
        b.ret(v)
        assert fold_constants(fn) == 0
        with pytest.raises(ArithmeticTrap):
            Interpreter(m).run()

    def test_folds_comparisons_and_casts(self):
        src = """
        output int out[1];
        void main() { out[0] = (int)(2.5 * 2.0) + (3 < 4 ? 100 : 200); }
        """
        module = compile_source(src)
        folded = fold_constants_module(module)
        assert folded > 0
        verify_module(module)
        interp = Interpreter(module)
        interp.run()
        assert interp.read_global("out")[0] == 105

    def test_combined_pipeline_on_workload(self):
        """simplifycfg + constfold + dce compose safely on a real kernel."""
        from repro.opt import eliminate_dead_code_module

        w = get_workload("kmeans")
        base = w.build_module()
        base_out, _ = w.run(base, w.test_inputs())

        module = w.build_module()
        fold_constants_module(module)
        simplify_cfg_module(module)
        eliminate_dead_code_module(module)
        verify_module(module)
        out, _ = w.run(module, w.test_inputs())
        for k in base_out:
            assert np.array_equal(base_out[k], out[k])
