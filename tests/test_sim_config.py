"""Tests for the simulator configuration (paper Table II)."""

import pytest

from repro.sim import CacheConfig, SimConfig


class TestTable2Defaults:
    def test_paper_values(self):
        cfg = SimConfig()
        assert cfg.frequency_ghz == 2.0
        assert cfg.issue_width == 2
        assert cfg.rob_entries == 192
        assert cfg.phys_int_registers == 256
        assert cfg.l1d.size_bytes == 32 * 1024 and cfg.l1d.associativity == 2
        assert cfg.l1i.size_bytes == 64 * 1024 and cfg.l1i.associativity == 2
        assert cfg.dtlb_entries == 64 and cfg.itlb_entries == 64

    def test_describe_renders_table2(self):
        text = SimConfig().describe()
        for fragment in (
            "@ 2GHz", "256 entries", "192 entries",
            "64KB, 2-way", "32KB, 2-way", "64 entries (each)",
        ):
            assert fragment in text

    def test_cache_geometry(self):
        cache = CacheConfig(32 * 1024, 2, 64)
        assert cache.num_sets == 256

    def test_latency_table_covers_expensive_ops(self):
        lat = SimConfig().latencies
        assert lat["sdiv"] > lat["mul"] > 1
        assert lat["fdiv"] > lat["fmul"]
        assert lat["load"] >= 2

    def test_slot_costs_model_fused_guards(self):
        slots = SimConfig().slot_costs
        assert slots["guard_eq"] <= slots["guard_range"]
        assert slots["guard_values_1"] <= slots["guard_values_2"]

    def test_fault_model_defaults(self):
        cfg = SimConfig()
        assert cfg.symptom_window_cycles == 1000  # paper Section IV-C
        assert cfg.register_flip_bits == 32       # ARMv7-a registers
        assert 0.0 <= cfg.injection_live_bias <= 1.0

    def test_config_is_mutable_per_experiment(self):
        cfg = SimConfig(issue_width=4, rob_entries=64)
        assert cfg.issue_width == 4 and cfg.rob_entries == 64
        # defaults unaffected (no shared mutable state)
        assert SimConfig().issue_width == 2

    def test_latency_dicts_not_shared(self):
        a, b = SimConfig(), SimConfig()
        a.latencies["mul"] = 99
        assert b.latencies["mul"] != 99
