"""Shared-prefix trial execution: snapshots, fast-forward restore, triage.

The snapshot engine (``src/repro/sim/snapshot.py``) lets each injection trial
restore the golden run's state at the nearest snapshot before its injection
cycle and replay only the delta, and the dead-flip triage pass short-circuits
provably-dead flips straight to Masked.  Both are pure optimisations: these
tests pin down that a snapshot+triage campaign is **byte-identical** — trial
results and obs event logs — to a from-scratch fastpath run, for every scheme
on two workloads, serially and under ``jobs=2``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import compute_liveness
from repro.faultinjection.campaign import (
    CampaignConfig,
    prepare,
    run_campaign,
)
from repro.obs.events import read_events, resilience_log_path
from repro.obs.report import LogReport
from repro.sim import snapshot as snapshot_mod
from repro.sim.interpreter import Interpreter
from repro.transforms.pipeline import SCHEMES
from repro.workloads.registry import get_workload
from tests.conftest import build_sum_loop

WORKLOADS = ("tiff2bw", "g721dec")

#: small fixed cadence so even short golden runs get many snapshots
_EVERY = 200


@pytest.fixture(autouse=True)
def _fastpath(monkeypatch):
    """Snapshots require the compiled fast path; force it on for this file."""
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    monkeypatch.delenv("REPRO_SNAPSHOT", raising=False)
    monkeypatch.delenv("REPRO_SNAPSHOT_EVERY", raising=False)
    monkeypatch.delenv("REPRO_TRIAGE", raising=False)


def _campaign(prepared, config, log_path):
    cfg = replace(config, obs_log=str(log_path))
    result = run_campaign(prepared.workload, prepared.scheme, cfg,
                          prepared=prepared)
    return result, log_path.read_bytes()


# ---------------------------------------------------------------------------
# differential matrix: snapshot+triage vs from-scratch, all schemes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("scheme", list(SCHEMES))
def test_campaign_differential_byte_identical(tmp_path, name, scheme):
    """Every (workload, scheme): from-scratch vs snapshot vs snapshot+triage
    vs snapshot+triage under jobs=2 — identical trials, byte-identical logs.
    """
    workload = get_workload(name)
    snap_cfg = CampaignConfig(
        trials=6, seed=11, snapshot_every=_EVERY, triage=True
    )
    prepared = prepare(workload, scheme, snap_cfg)
    assert prepared.snapshots is not None and len(prepared.snapshots) > 0

    base_cfg = replace(snap_cfg, snapshot_every=0, triage=False)
    baseline, base_log = _campaign(prepared, base_cfg, tmp_path / "base.jsonl")

    variants = {
        "snapshot": replace(snap_cfg, triage=False),
        "snapshot_triage": snap_cfg,
        "snapshot_triage_jobs2": replace(snap_cfg, jobs=2),
    }
    for label, cfg in variants.items():
        result, log = _campaign(prepared, cfg, tmp_path / f"{label}.jsonl")
        assert result.trials == baseline.trials, label
        assert log == base_log, label


def test_restore_actually_happens(tmp_path):
    """The differential matrix is vacuous unless trials really fast-forward:
    the sidecar must report snapshot restores and saved replay cycles."""
    workload = get_workload("tiff2bw")
    cfg = CampaignConfig(trials=8, seed=3, snapshot_every=_EVERY, triage=True,
                         obs_log=str(tmp_path / "log.jsonl"))
    prepared = prepare(workload, "dup_valchk", cfg)
    run_campaign(workload, "dup_valchk", cfg, prepared=prepared)

    sidecar, _ = read_events(resilience_log_path(cfg.obs_log))
    sharing = [e for e in sidecar if e["event"] == "prefix_sharing"]
    assert len(sharing) == 1
    assert sharing[0]["restores"] > 0
    assert sharing[0]["replay_cycles_saved"] > 0
    # the main log carries no trace of it (byte-identity guarantee)
    main_events, _ = read_events(cfg.obs_log)
    assert all(e["event"] != "prefix_sharing" for e in main_events)


def test_report_renders_prefix_sharing_section(tmp_path):
    workload = get_workload("tiff2bw")
    cfg = CampaignConfig(trials=8, seed=3, snapshot_every=_EVERY,
                         obs_log=str(tmp_path / "log.jsonl"))
    prepared = prepare(workload, "dup_valchk", cfg)
    run_campaign(workload, "dup_valchk", cfg, prepared=prepared)

    report = LogReport.from_paths([cfg.obs_log])
    assert len(report.prefix_sharing) == 1
    doc = report.to_json()
    assert doc["prefix_sharing"]["campaigns"] == 1
    assert doc["prefix_sharing"]["restores"] > 0
    text = report.render_text()
    assert "prefix sharing" in text
    assert "snapshot restores" in text


# ---------------------------------------------------------------------------
# snapshot round-trip units
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiff_snapshots():
    """Prepared tiff2bw with a dense snapshot store of the golden run."""
    workload = get_workload("tiff2bw")
    cfg = CampaignConfig(trials=2, seed=1, snapshot_every=_EVERY)
    prepared = prepare(workload, "dup_valchk", cfg)
    assert prepared.snapshots is not None
    return prepared


def test_snapshot_install_round_trip_is_independent(tiff_snapshots):
    """Two installs of one snapshot must not share mutable state."""
    from repro.sim.faults import InjectionPlan

    prepared = tiff_snapshots
    snap = prepared.snapshots.snapshots[len(prepared.snapshots) // 2]
    plan = InjectionPlan(cycle=snap.cycle + 50, bit=3, seed=9)

    interps = []
    for _ in range(2):
        interp = Interpreter(prepared.module, guard_mode="count",
                             fastpath=True)
        snap.install(interp, plan)
        interps.append(interp)
    a, b = interps

    assert a.cycle == b.cycle == snap.cycle
    # memory: equal bytes, distinct buffers
    seg_a = {id(s) for s in a.memory._segments.values()}
    seg_b = {id(s) for s in b.memory._segments.values()}
    assert not (seg_a & seg_b)
    for name, idx in snap.global_index:
        sa, sb = a.global_segments[name], b.global_segments[name]
        assert sa.data == sb.data
        assert sa is not sb
    # frames: same shape, distinct objects and value dicts
    assert len(a._frames) == len(b._frames)
    for fa, fb in zip(a._frames, b._frames):
        assert fa is not fb
        assert fa.values is not fb.values
        assert set(fa.values) == set(fb.values)
    # register-file accounting is consistent with the recorded log tail
    assert a._rf_base + len(a._rf_log) == b._rf_base + len(b._rf_log)
    # mutating one interpreter must not leak into the other
    first = next(iter(a.global_segments))
    a.global_segments[first].data[0] ^= 0xFF
    assert (a.global_segments[first].data[0]
            != b.global_segments[first].data[0])


def test_snapshot_regfile_materialises_identically(tiff_snapshots):
    """Restored rf log + base must materialise the same occupancy twice."""
    from repro.sim.faults import InjectionPlan

    prepared = tiff_snapshots
    snap = prepared.snapshots.snapshots[-1]
    plan = InjectionPlan(cycle=snap.cycle + 1, bit=0, seed=4)
    views = []
    for _ in range(2):
        interp = Interpreter(prepared.module, guard_mode="count",
                             fastpath=True)
        snap.install(interp, plan)
        interp._materialize_regfile()
        views.append([
            (slot.tag, getattr(slot.value_obj, "name", None))
            for slot in interp._regfile.slots
        ])
    assert views[0] == views[1]
    assert any(tag >= 0 for tag, _ in views[0])  # registers really occupied


def _fake_snapshot(cycle):
    snap = object.__new__(snapshot_mod.Snapshot)
    snap.cycle = cycle
    return snap


def test_store_nearest_boundary_semantics():
    """An injection at cycle C fires at the state after C-1 instructions, so
    ``nearest(C)`` must return the latest snapshot with cycle <= C-1."""
    store = snapshot_mod.SnapshotStore()
    for cycle in (100, 200, 300):
        store.add(_fake_snapshot(cycle))
    assert store.nearest(99) is None
    assert store.nearest(100) is None       # snapshot AT the cycle is too late
    assert store.nearest(101) is store.snapshots[0]
    assert store.nearest(250) is store.snapshots[1]
    assert store.nearest(301) is store.snapshots[2]
    assert store.nearest(10**9) is store.snapshots[2]


def test_recorder_caps_snapshot_count(tiff_snapshots):
    """The capture run must stop snapshotting once the memory cap is hit."""
    prepared = tiff_snapshots
    interp = Interpreter(prepared.module, guard_mode="count", fastpath=True)
    recorder = snapshot_mod.SnapshotRecorder(50, limit=4)
    prepared.workload.run(
        prepared.module, prepared.inputs, interpreter=interp,
        capture=recorder,
    )
    assert len(recorder.store) == 4
    assert recorder.next_due == 1 << 62  # disarmed after the cap


# ---------------------------------------------------------------------------
# config resolution and escape hatches
# ---------------------------------------------------------------------------


def test_resolve_snapshot_every(monkeypatch):
    resolve = snapshot_mod.resolve_snapshot_every
    assert resolve(500) == 500          # explicit wins over any env
    assert resolve(0) == 0
    monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "123")
    assert resolve(None) == 123
    assert resolve(0) == 0
    monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "garbage")
    assert resolve(None) == snapshot_mod.AUTO
    monkeypatch.delenv("REPRO_SNAPSHOT_EVERY")
    monkeypatch.setenv("REPRO_SNAPSHOT", "0")
    assert resolve(None) == 0           # kill switch
    monkeypatch.delenv("REPRO_SNAPSHOT")
    assert resolve(None) == snapshot_mod.AUTO


def test_resolve_triage(monkeypatch):
    resolve = snapshot_mod.resolve_triage
    monkeypatch.delenv("REPRO_TRIAGE", raising=False)
    assert resolve(None) is True        # on by default
    assert resolve(False) is False
    monkeypatch.setenv("REPRO_TRIAGE", "0")
    assert resolve(None) is False
    assert resolve(True) is True        # explicit wins


def test_auto_cadence():
    assert snapshot_mod.auto_cadence(100) is None  # too short to bother
    assert snapshot_mod.auto_cadence(64_000) == 2_000
    assert snapshot_mod.auto_cadence(10_000) == 1_000  # floored


def test_env_kill_switch_disables_capture(monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT", "0")
    workload = get_workload("tiff2bw")
    cfg = CampaignConfig(trials=2, seed=1)
    prepared = prepare(workload, "dup", cfg)
    assert prepared.snapshots is None


# ---------------------------------------------------------------------------
# liveness map (dead-flip triage) on handwritten IR
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sum_loop_liveness():
    module, h = build_sum_loop()
    return h, compute_liveness(h["fn"])


def test_value_live_when_used_later_in_block(sum_loop_liveness):
    h, lv = sum_loop_liveness
    body = h["body"]
    # body = [gep, load, mul(scaled), add(acc_next), add(i_next), br]
    scaled, loaded = body.instructions[2], body.instructions[1]
    assert snapshot_mod.value_dead_after(lv, body, 3, scaled) is False
    assert snapshot_mod.value_dead_after(lv, body, 3, loaded) is False


def test_value_dead_after_last_use(sum_loop_liveness):
    h, lv = sum_loop_liveness
    body = h["body"]
    loaded, scaled = body.instructions[1], body.instructions[2]
    # after acc_next (index 3) neither is referenced again nor live-out
    assert snapshot_mod.value_dead_after(lv, body, 4, loaded) is True
    assert snapshot_mod.value_dead_after(lv, body, 4, scaled) is True


def test_value_live_through_successor_phi(sum_loop_liveness):
    """acc_next flows into the header phi: live-out keeps it live at the
    branch, even with no further use inside the block."""
    h, lv = sum_loop_liveness
    body = h["body"]
    acc_next = body.instructions[3]
    assert snapshot_mod.value_dead_after(lv, body, 5, acc_next) is False


def test_value_dead_when_redefined_before_use(sum_loop_liveness):
    """A flip into i_next *before its defining instruction re-executes* is
    dead: the definition overwrites the register before any use."""
    h, lv = sum_loop_liveness
    body = h["body"]
    i_next = body.instructions[4]
    assert i_next in lv.live_out.get(body, ())  # live-out via the header phi
    assert snapshot_mod.value_dead_after(lv, body, 0, i_next) is True
    # but after its def has run, the phi edge keeps it live
    assert snapshot_mod.value_dead_after(lv, body, 5, i_next) is False


def test_phi_value_liveness_in_header(sum_loop_liveness):
    h, lv = sum_loop_liveness
    header = h["header"]
    # header = [phi i, phi acc, icmp cond, condbr]
    i_phi, acc_phi, cond = header.instructions[:3]
    assert snapshot_mod.value_dead_after(lv, header, 3, cond) is False
    assert snapshot_mod.value_dead_after(lv, header, 3, acc_phi) is False
    assert snapshot_mod.value_dead_after(lv, header, 3, i_phi) is False
