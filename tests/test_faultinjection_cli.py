"""Tests for the fault-injection CLI (python -m repro.faultinjection)."""

import json

import pytest

from repro.faultinjection.__main__ import main


class TestFiCli:
    def test_campaign_summary_printed(self, capsys):
        assert main(["tiff2bw", "dup", "--trials", "5"]) == 0
        out = capsys.readouterr().out
        assert "tiff2bw [dup] — 5 trials" in out
        assert "Masked" in out and "coverage" in out
        assert "false positives" in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main(["tiff2bw", "original", "--trials", "4",
                     "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["workload"] == "tiff2bw"
        assert len(data["records"]) == 4

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["tiff2bw", "tmr"])

    def test_swap_inputs_flag(self, capsys):
        assert main(["tiff2bw", "original", "--trials", "3",
                     "--swap-inputs"]) == 0
        assert "3 trials" in capsys.readouterr().out
