"""Unit tests for loop detection, state variables, use-def, and liveness."""

import pytest

from repro.analysis import (
    LoopInfo,
    compute_liveness,
    depends_on,
    find_state_variables,
    is_chain_terminator,
    producer_chain,
    transitive_users,
)
from repro.frontend import compile_source
from repro.ir import I32, IRBuilder, Module
from tests.conftest import build_sum_loop


class TestLoopInfo:
    def test_single_loop_detected(self, sum_loop):
        _, h = sum_loop
        li = LoopInfo.compute(h["fn"])
        assert len(li.loops) == 1
        loop = li.loops[0]
        assert loop.header is h["header"]
        assert loop.blocks == {h["header"], h["body"]}
        assert loop.latches == [h["body"]]
        assert loop.depth == 1

    def test_exit_blocks(self, sum_loop):
        _, h = sum_loop
        loop = LoopInfo.compute(h["fn"]).loops[0]
        assert loop.exit_blocks() == [h["exit"]]

    def test_preheader_candidates(self, sum_loop):
        _, h = sum_loop
        loop = LoopInfo.compute(h["fn"]).loops[0]
        assert loop.preheader_candidates() == [h["entry"]]

    def test_nested_loops(self):
        src = """
        output int out[1];
        void main() {
            int total = 0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) {
                    total += i * j;
                }
            }
            out[0] = total;
        }
        """
        module = compile_source(src)
        li = LoopInfo.compute(module.function("main"))
        assert len(li.loops) == 2
        depths = sorted(l.depth for l in li.loops)
        assert depths == [1, 2]
        inner = next(l for l in li.loops if l.depth == 2)
        outer = next(l for l in li.loops if l.depth == 1)
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.blocks < outer.blocks

    def test_innermost_containing(self):
        src = """
        output int out[1];
        void main() {
            int t = 0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) { t += j; }
            }
            out[0] = t;
        }
        """
        module = compile_source(src)
        fn = module.function("main")
        li = LoopInfo.compute(fn)
        inner = next(l for l in li.loops if l.depth == 2)
        assert li.innermost_loop_containing(inner.header) is inner


class TestStateVariables:
    def test_loop_carried_phis_found(self, sum_loop):
        _, h = sum_loop
        svs = find_state_variables(h["fn"])
        assert {sv.phi for sv in svs} == {h["i"], h["acc"]}

    def test_init_and_update_incomings(self, sum_loop):
        _, h = sum_loop
        sv = next(s for s in find_state_variables(h["fn"]) if s.phi is h["acc"])
        assert len(sv.init_incomings) == 1
        assert len(sv.update_incomings) == 1
        assert sv.update_incomings[0][0] is h["acc_next"]

    def test_non_recurrent_header_phi_is_not_state(self):
        """A header phi whose in-loop incoming does not depend on the phi is
        not a state variable (recomputed from scratch each iteration)."""
        m = Module()
        src = m.add_global("src", I32, 8, is_input=True)
        fn = m.add_function("main", I32)
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        body = fn.add_block("body")
        exit_ = fn.add_block("exit")
        b = IRBuilder(entry)
        b.br(header)
        b.set_block(header)
        i = b.phi(I32, "i")
        last = b.phi(I32, "last")  # merely carries the previous load
        cond = b.icmp("slt", i, b.const(8))
        b.condbr(cond, body, exit_)
        b.set_block(body)
        ptr = b.gep(src, i, I32)
        v = b.load(I32, ptr)
        i2 = b.add(i, b.const(1))
        b.br(header)
        i.add_incoming(b.const(0), entry)
        i.add_incoming(i2, body)
        last.add_incoming(b.const(0), entry)
        last.add_incoming(v, body)  # independent of `last`
        b.set_block(exit_)
        b.ret(last)
        svs = find_state_variables(fn)
        assert {sv.phi for sv in svs} == {i}

    def test_if_else_merge_phi_is_not_state(self):
        src = """
        input int data[8];
        output int out[1];
        void main() {
            int t = 0;
            for (int i = 0; i < 8; i++) {
                int v = data[i];
                int w = 0;
                if (v > 0) { w = v; } else { w = -v; }
                t += w;
            }
            out[0] = t;
        }
        """
        module = compile_source(src)
        fn = module.function("main")
        names = {sv.phi.name for sv in find_state_variables(fn)}
        # only i and t are loop-carried; the if-else merge of w is not
        assert len(names) == 2


class TestProducerChains:
    def test_chain_ordered_and_load_terminated(self, sum_loop):
        _, h = sum_loop
        chain = producer_chain(h["acc_next"])
        assert chain == [h["scaled"], h["acc_next"]]
        assert h["loaded"] not in chain  # loads terminate the chain

    def test_stop_at_predicate(self, sum_loop):
        _, h = sum_loop
        chain = producer_chain(h["acc_next"], stop_at=lambda i: i is h["scaled"])
        assert chain == [h["acc_next"]]

    def test_chain_terminators(self, sum_loop):
        _, h = sum_loop
        assert is_chain_terminator(h["loaded"])
        assert is_chain_terminator(h["i"])  # phi
        assert not is_chain_terminator(h["scaled"])

    def test_depends_on_through_chain(self, sum_loop):
        _, h = sum_loop
        assert depends_on(h["acc_next"], h["acc"])
        assert depends_on(h["acc_next"], h["loaded"])
        assert not depends_on(h["i_next"], h["acc"])

    def test_transitive_users(self, sum_loop):
        _, h = sum_loop
        users = transitive_users([h["scaled"]])
        assert id(h["acc_next"]) in users
        assert id(h["acc"]) in users  # via the phi


class TestLiveness:
    def test_loop_carried_values_live_through_header(self, sum_loop):
        _, h = sum_loop
        lv = compute_liveness(h["fn"])
        assert h["acc"] in lv.live_in[h["body"]]
        assert h["i"] in lv.live_in[h["body"]]
        # values defined and consumed inside the body are not live-out of it
        assert h["scaled"] not in lv.live_out[h["body"]]

    def test_phi_operand_live_out_of_latch(self, sum_loop):
        _, h = sum_loop
        lv = compute_liveness(h["fn"])
        assert h["acc_next"] in lv.live_out[h["body"]]

    def test_max_pressure_positive(self, sum_loop):
        _, h = sum_loop
        lv = compute_liveness(h["fn"])
        assert lv.max_pressure() >= 2
