"""Differential tests: compiled fast path vs. reference interpreter.

The fast path (``src/repro/sim/compiled.py``) pre-compiles each function into
per-instruction closures and fuses straight-line runs into superblocks.  These
tests pin down that it is a pure optimisation: every observable — outputs,
instruction counts, guard tallies, fault outcomes, and the exact cycle of
every trap — must be bit-identical to the instruction-at-a-time reference
path (``REPRO_FASTPATH=0``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faultinjection import CampaignConfig, prepare, run_campaign
from repro.sim.interpreter import Interpreter
from repro.workloads.registry import get_workload


def _norm(x):
    """Hashable, bit-exact view of (possibly nested) workload outputs."""
    if isinstance(x, np.ndarray):
        return ("ndarray", x.dtype.str, x.shape, x.tobytes())
    if isinstance(x, dict):
        return tuple(sorted((k, _norm(v)) for k, v in x.items()))
    if isinstance(x, (list, tuple)):
        return tuple(_norm(v) for v in x)
    return x


@pytest.mark.parametrize("name", ["tiff2bw", "g721dec"])
def test_golden_run_matches_reference(name):
    workload = get_workload(name)
    observed = {}
    for fastpath in (False, True):
        module = workload.build_module()
        interp = Interpreter(module, guard_mode="count", fastpath=fastpath)
        outputs, result = workload.run(
            module, workload.test_inputs(), interpreter=interp
        )
        observed[fastpath] = (_norm(outputs), _norm(result), interp.cycle)
    assert observed[True] == observed[False]


@pytest.mark.parametrize("scheme", ["dup", "dup_valchk"])
def test_campaign_matches_reference_bit_exact(scheme, monkeypatch):
    """Same seed, fastpath on vs. off: every TrialResult field must match.

    Dataclass equality covers outcome class, detection cycle (i.e. the exact
    re-timed trap cycle — the sharpest check on superblock trap accounting),
    fidelity metrics, and the injection plan itself.
    """
    config = CampaignConfig(trials=10, seed=5)
    workload = get_workload("tiff2bw")

    monkeypatch.setenv("REPRO_FASTPATH", "0")
    prepared_ref = prepare(workload, scheme, config)
    reference = run_campaign(workload, scheme, config, prepared=prepared_ref)

    monkeypatch.setenv("REPRO_FASTPATH", "1")
    prepared_fast = prepare(workload, scheme, config)
    fast = run_campaign(workload, scheme, config, prepared=prepared_fast)

    assert _norm(prepared_fast.golden_outputs) == _norm(prepared_ref.golden_outputs)
    assert fast.golden_instructions == reference.golden_instructions
    assert fast.golden_guard_failures == reference.golden_guard_failures
    assert fast.trials == reference.trials


def test_obs_event_logs_match_reference_byte_exact(tmp_path, monkeypatch):
    """The fast path must report the same trial events as the reference.

    The event log derives everything from (plan, TrialResult) — including the
    new detector fields (check id/kind, trap kind, event cycle, latency) — so
    the JSONL streams of a fastpath=0 and fastpath=1 campaign must be
    byte-identical, not merely outcome-equal.
    """
    from dataclasses import replace

    config = CampaignConfig(trials=12, seed=5)
    workload = get_workload("tiff2bw")
    logs = {}
    for fastpath in ("0", "1"):
        monkeypatch.setenv("REPRO_FASTPATH", fastpath)
        log = tmp_path / f"fastpath{fastpath}.jsonl"
        prepared = prepare(workload, "dup_valchk", config)
        run_campaign(
            workload, "dup_valchk",
            replace(config, obs_log=str(log)), prepared=prepared,
        )
        logs[fastpath] = log.read_bytes()
    assert logs["1"] == logs["0"]
    # and the log is not trivially empty: it carries real trial records
    assert logs["0"].count(b'"event":"trial"') == config.trials
