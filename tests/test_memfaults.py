"""Memory-hierarchy fault injection: occupancy maps, dead-region triage,
containment, parity, and the AVF report.

The two load-bearing invariants:

* ``single_bit`` campaigns stay byte-identical to their pre-occupancy bytes
  even with the occupancy pass forced on (``REPRO_OCCUPANCY=1``) — the map
  may exist, but the default model never consumes it;
* every memory model is deterministic across serial/parallel execution,
  triage on/off, and checkpoint interrupt/resume.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.faultinjection.campaign import (
    CampaignConfig,
    _ensure_occupancy,
    prepare,
    run_campaign,
    run_trial,
)
from repro.faultinjection.diskcache import _config_fingerprint, campaign_key
from repro.faultinjection.resilience import ResiliencePolicy
from repro.obs import events as obs_events
from repro.obs.metrics import enable_global
from repro.obs.report import LogReport, _structure_of
from repro.sim import memfaults
from repro.sim.faults import TRIAGEABLE_FAULT_MODELS
from repro.sim.memory import Memory, MemoryFaultError
from repro.workloads import get_workload
from tests.conftest import build_sum_loop

WORKLOAD = "tiff2bw"
SCHEME = "dup"
MEMORY_MODELS = ("mem_transient", "mem_stuck_at", "cache_line", "stack_frame")


@pytest.fixture(autouse=True)
def _no_occupancy_env(monkeypatch):
    monkeypatch.delenv("REPRO_OCCUPANCY", raising=False)
    monkeypatch.delenv("REPRO_FAULT_MODEL", raising=False)


@pytest.fixture(scope="module")
def prepared_mem():
    """tiff2bw/dup prepared under a memory model: occupancy map attached."""
    return prepare(
        get_workload(WORKLOAD), SCHEME,
        CampaignConfig(seed=5, fault_model="mem_transient"),
    )


class TestOccupancyCapture:
    def test_prepare_attaches_a_map_for_memory_models(self, prepared_mem):
        occ = prepared_mem.occupancy
        assert occ is not None
        assert occ.total_words > 0
        assert occ.occupied_count() > 0
        assert occ.golden_instructions == prepared_mem.golden_instructions

    def test_prepare_skips_the_map_for_single_bit(self):
        prepared = prepare(
            get_workload(WORKLOAD), SCHEME, CampaignConfig(seed=5)
        )
        assert prepared.occupancy is None

    def test_occupancy_enabled_gating(self, monkeypatch):
        assert memfaults.occupancy_enabled("mem_transient")
        assert memfaults.occupancy_enabled("chaos")
        assert not memfaults.occupancy_enabled("single_bit")
        monkeypatch.setenv("REPRO_OCCUPANCY", "0")
        assert not memfaults.occupancy_enabled("mem_transient")
        monkeypatch.setenv("REPRO_OCCUPANCY", "1")
        assert memfaults.occupancy_enabled("single_bit")

    def test_boundary_cadence_is_config_independent(self):
        assert memfaults.boundary_cadence(6400) == 100
        assert memfaults.boundary_cadence(10) == 1
        assert memfaults.boundary_cadence(0) == 1

    def test_ensure_occupancy_attaches_on_demand(self):
        prepared = prepare(
            get_workload(WORKLOAD), SCHEME, CampaignConfig(seed=5)
        )
        assert prepared.occupancy is None
        _ensure_occupancy(
            prepared, CampaignConfig(seed=5, fault_model="cache_line")
        )
        assert prepared.occupancy is not None

    def test_map_is_deterministic(self, prepared_mem):
        again = prepare(
            get_workload(WORKLOAD), SCHEME,
            CampaignConfig(seed=5, fault_model="mem_transient"),
        ).occupancy
        occ = prepared_mem.occupancy
        assert again.segment_spans == occ.segment_spans
        assert again.sorted_words == occ.sorted_words
        assert again.sorted_asns == occ.sorted_asns
        assert again.boundary_cycles == occ.boundary_cycles
        assert again.resident_lines == occ.resident_lines

    def test_fused_capture_matches_dedicated_pass(self, prepared_mem):
        # prepare() fuses occupancy capture into the snapshot run; the
        # _ensure_occupancy path runs a dedicated occupancy-only pass.
        # Workers may take either route, so the maps must be bit-identical.
        from repro.faultinjection.campaign import _GoldenShim, _capture_occupancy

        config = CampaignConfig(seed=5, fault_model="mem_transient")
        assert prepared_mem.snapshots is not None  # fused route was taken
        dedicated = _capture_occupancy(
            prepared_mem.workload, prepared_mem.module, prepared_mem.inputs,
            _GoldenShim(prepared_mem.golden_instructions), config,
        )
        fused = prepared_mem.occupancy
        for field in (
            "golden_instructions", "segment_spans", "total_words",
            "boundary_cycles", "boundary_asns", "resident_lines",
            "always_live", "sorted_words", "sorted_asns", "first_writes",
            "cache_line_shift", "cache_total_lines",
        ):
            assert getattr(fused, field) == getattr(dedicated, field), field


class TestAccessSpanRecording:
    """An access records every word and cache line it spans.

    Regression: compiled i64/f64/pointer loads issue one 8-byte
    ``_mem_locate`` call; recording only ``off >> 2`` left the upper word
    out of the occupancy map, so ``is_dead()`` called it "never read" and a
    live fault triaged to Masked.
    """

    @staticmethod
    def _wrappers():
        from repro.sim.config import CacheConfig

        memory = Memory()
        seg = memory.map_segment("g", 256)

        class _Shim:
            pass

        shim = _Shim()
        shim.memory = memory
        recorder = memfaults.OccupancyRecorder(
            every=1000,
            l1d_config=CacheConfig(
                size_bytes=1024, associativity=2, line_bytes=64
            ),
        )
        load, store = recorder.bind_occupancy(shim)
        return seg, recorder, load, store

    def test_eight_byte_load_records_both_words(self):
        seg, rec, load, _store = self._wrappers()
        load(seg.base + 8, 8)
        assert 2 in rec.last_read and 3 in rec.last_read
        assert rec.last_read[2] == rec.last_read[3]

    def test_eight_byte_store_records_both_words(self):
        seg, rec, _load, store = self._wrappers()
        store(seg.base + 16, 8)
        assert {4, 5} <= rec.written
        assert rec.first_write[4] == rec.first_write[5]

    def test_narrow_access_records_exactly_one_word(self):
        seg, rec, load, store = self._wrappers()
        load(seg.base + 3, 1)
        store(seg.base + 6, 2)
        assert set(rec.last_read) == {0}
        assert rec.written == {1}

    def test_line_crossing_access_touches_both_lines(self):
        seg, rec, load, _store = self._wrappers()
        load(seg.base + 60, 8)  # bytes 60..67 straddle a 64-byte line
        shift = rec.cache.line_shift
        lines = rec.cache.resident_lines()
        assert (seg.base + 60) >> shift in lines
        assert (seg.base + 67) >> shift in lines

    def test_wrapper_cache_policy_matches_tracker_touch(self):
        from repro.sim.cache import ResidencyTracker
        from repro.sim.config import CacheConfig

        seg, rec, load, store = self._wrappers()
        reference = ResidencyTracker(
            CacheConfig(size_bytes=1024, associativity=2, line_bytes=64)
        )
        for i in range(64):
            address = seg.base + (i * 37) % 248
            (load if i % 2 else store)(address, 4)
            reference.touch(address)
        assert rec.cache.resident_lines() == reference.resident_lines()


class TestOccupancyMapSemantics:
    def test_output_words_are_never_dead(self, prepared_mem):
        occ = prepared_mem.occupancy
        assert occ.always_live  # tiff2bw declares output globals
        for word in occ.always_live[:8]:
            assert not occ.is_dead(word, 1)
            assert not occ.is_dead(word, occ.golden_instructions)

    def test_unoccupied_words_are_dead(self, prepared_mem):
        occ = prepared_mem.occupancy
        occupied = set(occ.always_live) | set(occ.sorted_words)
        holes = [w for w in range(occ.total_words) if w not in occupied]
        assert holes  # the stack segment alone guarantees holes
        assert occ.is_dead(holes[0], 1)

    def test_deadness_is_monotone_in_cycle(self, prepared_mem):
        # Once provably dead, a word stays dead at every later cycle: the
        # asn bound only grows with the injection cycle.
        occ = prepared_mem.occupancy
        golden = occ.golden_instructions
        for word in occ.sorted_words[:32]:
            if occ.is_dead(word, golden // 2):
                assert occ.is_dead(word, golden)

    def test_draw_is_seed_deterministic(self, prepared_mem):
        import random

        occ = prepared_mem.occupancy
        a = [occ.draw_occupied(random.Random(7)) for _ in range(5)]
        b = [occ.draw_occupied(random.Random(7)) for _ in range(5)]
        assert a == b
        assert all(w is not None for w in a)

    def test_locate_word_roundtrip(self, prepared_mem):
        from repro.sim.interpreter import Interpreter

        occ = prepared_mem.occupancy
        interp = Interpreter(prepared_mem.module)
        interp._setup_run(prepared_mem.inputs, None)
        word = occ.sorted_words[0]
        seg, offset = occ.locate_word(interp.memory, word)
        assert occ.word_of(interp.memory, seg, offset) == word

    def test_locate_word_layout_mismatch_raises(self, prepared_mem):
        occ = prepared_mem.occupancy
        other = Memory()
        other.map_segment("wrong", 64)
        with pytest.raises(MemoryFaultError):
            occ.locate_word(other, 0)
        with pytest.raises(MemoryFaultError):
            # Out-of-space word index against any memory.
            from repro.sim.interpreter import Interpreter

            interp = Interpreter(prepared_mem.module)
            interp._setup_run(prepared_mem.inputs, None)
            occ.locate_word(interp.memory, occ.total_words + 5)

    def test_residency_rows_cover_all_structures(self, prepared_mem):
        rows = prepared_mem.occupancy.residency()
        structures = [r["structure"] for r in rows]
        assert "stack" in structures
        assert "cache" in structures
        assert "regfile" in structures
        assert any(s.startswith("segment:") for s in structures)
        for row in rows:
            assert 0.0 <= row["residency"] <= 1.0


class TestMemoryHardening:
    def test_flip_word_bit_range_check(self):
        memory = Memory()
        seg = memory.map_segment("s", 16)
        memory.flip_word_bit(seg, 12, 3)
        with pytest.raises(MemoryFaultError):
            memory.flip_word_bit(seg, 16, 3)
        with pytest.raises(MemoryFaultError):
            memory.flip_word_bit(seg, -4, 3)

    def test_force_word_bit_semantics(self):
        memory = Memory()
        seg = memory.map_segment("s", 16)
        before, after = memory.force_word_bit(seg, 0, 3, 1)
        assert (before, after) == (0, 8)
        before, after = memory.force_word_bit(seg, 0, 3, 0)
        assert (before, after) == (8, 0)

    def test_locate_fault_word_unmapped_raises(self):
        memory = Memory()
        seg = memory.map_segment("s", 16)
        assert memory.locate_fault_word(seg.base + 6) == (seg, 4)
        with pytest.raises(MemoryFaultError):
            memory.locate_fault_word(12345)

    def test_layout_mismatch_is_contained_in_a_trial(self, prepared_mem):
        # A stale/mismatched occupancy map must classify the trial as
        # contained:MemoryFaultError, never escape as a raw exception.
        broken = replace(prepared_mem)
        spans = list(prepared_mem.occupancy.segment_spans)
        spans[0] = ("not-a-real-segment", spans[0][1], spans[0][2])
        broken.occupancy = memfaults.OccupancyMap(
            golden_instructions=prepared_mem.occupancy.golden_instructions,
            segment_spans=spans,
            total_words=prepared_mem.occupancy.total_words,
            boundary_cycles=list(prepared_mem.occupancy.boundary_cycles),
            boundary_asns=list(prepared_mem.occupancy.boundary_asns),
            resident_lines=list(prepared_mem.occupancy.resident_lines),
            always_live=list(prepared_mem.occupancy.always_live),
            sorted_words=list(prepared_mem.occupancy.sorted_words),
            sorted_asns=list(prepared_mem.occupancy.sorted_asns),
            first_writes=dict(prepared_mem.occupancy.first_writes),
            cache_line_shift=prepared_mem.occupancy.cache_line_shift,
            cache_total_lines=prepared_mem.occupancy.cache_total_lines,
        )
        config = CampaignConfig(seed=5)
        trial = run_trial(
            broken, cycle=prepared_mem.golden_instructions // 2, bit=3,
            seed=99, config=config, model="mem_transient",
        )
        assert trial.trap_kind == "contained:MemoryFaultError"


class TestSingleBitPinning:
    def test_single_bit_bytes_unchanged_with_occupancy_forced_on(
        self, tmp_path, monkeypatch
    ):
        workload = get_workload(WORKLOAD)

        def run(tag):
            log = tmp_path / f"{tag}.jsonl"
            config = CampaignConfig(trials=8, seed=5, obs_log=str(log))
            result = run_campaign(workload, SCHEME, config)
            return result.to_dict(), log.read_bytes()

        baseline_result, baseline_log = run("off")
        monkeypatch.setenv("REPRO_OCCUPANCY", "1")
        forced_result, forced_log = run("on")
        assert forced_result == baseline_result
        assert forced_log == baseline_log

    def test_single_bit_cache_key_ignores_occupancy(self, monkeypatch):
        module, _ = build_sum_loop()
        base = campaign_key(module, "w", "s", CampaignConfig())
        monkeypatch.setenv("REPRO_OCCUPANCY", "1")
        assert campaign_key(module, "w", "s", CampaignConfig()) == base

    def test_memory_word_and_chaos_keys_fragment_once(self):
        # The occupancy rework changed what these two pre-existing models
        # compute, so their keys carry a one-shot schema marker.
        fp = _config_fingerprint(CampaignConfig(fault_model="memory_word"))
        assert fp["memfaults"] == 1
        fp = _config_fingerprint(CampaignConfig(fault_model="chaos"))
        assert fp["memfaults"] == 1
        assert "memfaults" not in _config_fingerprint(CampaignConfig())
        assert "memfaults" not in _config_fingerprint(
            CampaignConfig(fault_model="mem_transient")
        )

    def test_memory_model_keys_fragment_by_model(self):
        module, _ = build_sum_loop()
        keys = {
            campaign_key(
                module, "w", "s", CampaignConfig(fault_model=model)
            )
            for model in MEMORY_MODELS + ("memory_word", "single_bit")
        }
        assert len(keys) == len(MEMORY_MODELS) + 2
        # jobs must still not fragment.
        for model in MEMORY_MODELS:
            config = CampaignConfig(fault_model=model)
            assert campaign_key(module, "w", "s", config) == campaign_key(
                module, "w", "s", replace(config, jobs=8)
            )


class TestDeadRegionTriage:
    def test_triageable_set_pins_the_sound_models(self):
        assert TRIAGEABLE_FAULT_MODELS == frozenset({
            "single_bit", "memory_word", "mem_transient", "mem_stuck_at",
            "cache_line", "stack_frame",
        })

    @pytest.mark.parametrize("model", MEMORY_MODELS + ("memory_word",))
    def test_triage_toggle_is_invisible(self, prepared_mem, model):
        workload = get_workload(WORKLOAD)
        on = run_campaign(
            workload, SCHEME,
            CampaignConfig(trials=10, seed=5, fault_model=model, triage=True),
            prepared=prepared_mem,
        )
        off = run_campaign(
            workload, SCHEME,
            CampaignConfig(trials=10, seed=5, fault_model=model, triage=False),
            prepared=prepared_mem,
        )
        assert on.to_dict() == off.to_dict()

    def test_dead_hits_surface_in_the_sidecar(self, prepared_mem, tmp_path):
        # The golden run never touches the stack on this workload, so every
        # stack_frame strike is provably dead — all triaged.
        log = tmp_path / "stack.jsonl"
        config = CampaignConfig(
            trials=10, seed=5, fault_model="stack_frame", obs_log=str(log),
        )
        result = run_campaign(
            get_workload(WORKLOAD), SCHEME, config, prepared=prepared_mem
        )
        assert result.counts()["Masked"] == config.trials
        sidecar, _ = obs_events.read_events(
            obs_events.resilience_log_path(str(log))
        )
        sharing = [e for e in sidecar if e["event"] == "prefix_sharing"]
        assert sharing and sharing[0]["triaged_dead_memory"] > 0
        # Dead hits still land and fill the record like a full run.
        landed = [t for t in result.trials if t.landed]
        assert landed
        assert all(
            t.value_name.startswith("<stack:") for t in landed
        )

    def test_memory_word_fallback_counts_dead_skips(
        self, prepared_mem, monkeypatch
    ):
        # With the map disabled the old rejection-sampling loop runs; its
        # wasted probes land in the memfault.dead_region_skips counter.
        monkeypatch.setenv("REPRO_OCCUPANCY", "0")
        registry = enable_global(True)
        before = registry.counter("memfault.dead_region_skips").snapshot()
        prepared = prepare(
            get_workload(WORKLOAD), SCHEME,
            CampaignConfig(seed=5, fault_model="memory_word"),
        )
        assert prepared.occupancy is None
        run_campaign(
            get_workload(WORKLOAD), SCHEME,
            CampaignConfig(trials=10, seed=5, fault_model="memory_word"),
            prepared=prepared,
        )
        after = registry.counter("memfault.dead_region_skips").snapshot()
        assert after >= before  # probes may or may not miss, never negative


class TestCheckpointResume:
    def test_interrupted_memory_campaign_resumes_byte_identical(
        self, prepared_mem, tmp_path
    ):
        workload = get_workload(WORKLOAD)
        policy = ResiliencePolicy(
            enabled=True, checkpoint_every=2, backoff_seconds=0.0
        )
        ref_log = tmp_path / "ref.jsonl"
        reference = run_campaign(
            workload, SCHEME,
            CampaignConfig(
                trials=8, seed=5, fault_model="mem_transient",
                obs_log=str(ref_log),
            ),
            prepared=prepared_mem,
        )

        seen = {"n": 0}

        def interrupt(trial):
            seen["n"] += 1
            if seen["n"] >= 3:
                raise KeyboardInterrupt

        ckpt = tmp_path / "ckpt.json"
        log = tmp_path / "log.jsonl"
        cfg = CampaignConfig(
            trials=8, seed=5, fault_model="mem_transient", obs_log=str(log),
            checkpoint=str(ckpt), resilience=policy,
        )
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                workload, SCHEME, cfg, prepared=prepared_mem,
                on_trial=interrupt,
            )
        assert ckpt.exists()
        resumed = run_campaign(
            workload, SCHEME,
            CampaignConfig(
                trials=8, seed=5, fault_model="mem_transient", jobs=2,
                obs_log=str(log), checkpoint=str(ckpt), resilience=policy,
            ),
            prepared=prepared_mem,
        )
        assert resumed.to_dict() == reference.to_dict()
        assert log.read_bytes() == ref_log.read_bytes()
        assert not ckpt.exists()


class TestAVFReport:
    def test_structure_classifier(self):
        assert _structure_of("<mem:lum+0x40>") == "segment:lum"
        assert _structure_of("<mem:__stack__+0x40>") == "stack"
        assert _structure_of("<stack:__stack__+0x40>") == "stack"
        assert _structure_of("<cache:rgb+0x40>") == "cache"
        assert _structure_of("<cache:tag:rgb+0x40>") == "cache"
        assert _structure_of("%sum.1") == "regfile"
        assert _structure_of("<none>") == "regfile"

    def test_campaign_emits_occupancy_sidecar_event(
        self, prepared_mem, tmp_path
    ):
        log = tmp_path / "mem.jsonl"
        config = CampaignConfig(
            trials=10, seed=5, fault_model="mem_transient", obs_log=str(log),
        )
        run_campaign(
            get_workload(WORKLOAD), SCHEME, config, prepared=prepared_mem
        )
        main_events, _ = obs_events.read_events(log)
        assert all(e["event"] != "occupancy" for e in main_events)
        sidecar, _ = obs_events.read_events(
            obs_events.resilience_log_path(str(log))
        )
        occ = [e for e in sidecar if e["event"] == "occupancy"]
        assert len(occ) == 1
        assert occ[0]["workload"] == WORKLOAD
        assert any(
            row["structure"] == "cache" for row in occ[0]["structures"]
        )

    def test_avf_report_from_a_real_campaign(self, prepared_mem, tmp_path):
        log = tmp_path / "avf.jsonl"
        config = CampaignConfig(
            trials=12, seed=7, fault_model="mem_transient", obs_log=str(log),
        )
        run_campaign(
            get_workload(WORKLOAD), SCHEME, config, prepared=prepared_mem
        )
        report = LogReport.from_paths([log])
        assert report.occupancy
        rows = report.avf_rows()
        assert rows
        by_name = {r["structure"]: r for r in rows}
        assert any(name.startswith("segment:") for name in by_name)
        for row in rows:
            assert 0.0 <= row["avf"] <= 1.0
            assert row["trials"] > 0
        text = report.render_avf()
        assert "AVF" in text
        assert "residency" in text
        doc = report.to_json()
        assert doc["avf"]["campaigns_with_occupancy"] == 1
        assert doc["avf"]["rows"] == rows
        assert json.dumps(doc)  # JSON-safe end to end

    def test_residency_counts_match_aggregated_fraction(self):
        # Folding occupancy events from several campaigns must keep the
        # displayed occupied/total counts consistent with the residency
        # used as the AVF weight: sums, not one campaign's counts glued to
        # an averaged fraction.
        report = LogReport()
        report.occupancy = [
            {"structures": [
                {"structure": "segment:g", "occupied_words": 10,
                 "total_words": 100, "residency": 0.1},
                {"structure": "regfile", "occupied_words": None,
                 "total_words": None, "residency": 1.0},
            ]},
            {"structures": [
                {"structure": "segment:g", "occupied_words": 90,
                 "total_words": 300, "residency": 0.3},
                {"structure": "regfile", "occupied_words": None,
                 "total_words": None, "residency": 1.0},
            ]},
        ]
        folded = report._residency_by_structure()
        seg = folded["segment:g"]
        assert seg["occupied_words"] == 100
        assert seg["total_words"] == 400
        assert seg["residency"] == pytest.approx(100 / 400)
        # Count-less rows fall back to the averaged fraction.
        assert folded["regfile"]["residency"] == pytest.approx(1.0)
        assert folded["regfile"]["occupied_words"] is None

    def test_avf_cli_flag(self, prepared_mem, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        log = tmp_path / "cli.jsonl"
        config = CampaignConfig(
            trials=8, seed=7, fault_model="cache_line", obs_log=str(log),
        )
        run_campaign(
            get_workload(WORKLOAD), SCHEME, config, prepared=prepared_mem
        )
        assert obs_main(["report", str(log), "--avf"]) == 0
        out = capsys.readouterr().out
        assert "AVF-style vulnerability report" in out
        assert "structure" in out
