"""Unit tests for mem2reg (SSA construction)."""

import pytest

from repro.frontend.codegen import CodeGenerator
from repro.frontend.mem2reg import promote_allocas, promote_module
from repro.frontend.parser import parse
from repro.ir import Alloca, Load, Phi, Store, verify_module
from repro.sim import Interpreter


def codegen_no_promote(src: str):
    """Compile to alloca form without running mem2reg."""
    return CodeGenerator(parse(src), "t").generate()


LOOP_SRC = """
output int out[1];
void main() {
    int s = 0;
    for (int i = 0; i < 10; i++) { s += i; }
    out[0] = s;
}
"""


class TestPromotion:
    def test_scalar_allocas_removed(self):
        module = codegen_no_promote(LOOP_SRC)
        fn = module.function("main")
        before = sum(isinstance(i, Alloca) for i in fn.instructions())
        assert before >= 2  # s and i
        promoted = promote_allocas(fn)
        assert promoted == before
        assert not any(isinstance(i, Alloca) for i in fn.instructions())
        verify_module(module)

    def test_phis_created_at_loop_header(self):
        module = codegen_no_promote(LOOP_SRC)
        fn = module.function("main")
        promote_allocas(fn)
        header = fn.block("for.cond")
        phis = list(header.phis())
        assert len(phis) == 2  # i and s

    def test_execution_identical_before_and_after(self):
        m1 = codegen_no_promote(LOOP_SRC)
        m2 = codegen_no_promote(LOOP_SRC)
        promote_module(m2)
        i1 = Interpreter(m1)
        i2 = Interpreter(m2)
        i1.run()
        i2.run()
        assert i1.read_global("out") == i2.read_global("out") == [45]

    def test_local_arrays_not_promoted(self):
        src = """
        output int out[1];
        void main() {
            int buf[4];
            buf[0] = 9;
            out[0] = buf[0];
        }
        """
        module = codegen_no_promote(src)
        fn = module.function("main")
        promote_allocas(fn)
        assert any(isinstance(i, Alloca) for i in fn.instructions())
        verify_module(module)

    def test_dead_loop_variable_pruned(self):
        """A loop-carried variable that is never read must leave no phi
        behind (mutually-dead phi cycles are pruned)."""
        src = """
        output int out[1];
        void main() {
            int dead = 0;
            int live = 0;
            for (int i = 0; i < 4; i++) {
                dead += i;
                live += 2;
            }
            out[0] = live;
        }
        """
        module = codegen_no_promote(src)
        fn = module.function("main")
        promote_allocas(fn)
        from repro.opt import eliminate_dead_code

        removed = eliminate_dead_code(fn)
        assert removed >= 2  # the dead phi and its update add
        verify_module(module)
        header = fn.block("for.cond")
        phi_names = [p.name for p in header.phis()]
        assert not any("dead" in n for n in phi_names)
        interp = Interpreter(module)
        interp.run()
        assert interp.read_global("out") == [8]

    def test_undef_on_uninitialised_path(self):
        """Reading a variable assigned on only one branch uses undef on the
        other path (and still verifies and executes)."""
        src = """
        input int flag[1];
        output int out[1];
        void main() {
            int x;
            if (flag[0]) { x = 5; }
            else { x = 0; }
            out[0] = x;
        }
        """
        module = codegen_no_promote(src)
        promote_module(module)
        verify_module(module)
        interp = Interpreter(module)
        interp.run(inputs={"flag": [1]})
        assert interp.read_global("out") == [5]

    def test_conditional_update_creates_merge_phi(self):
        src = """
        input int data[4];
        output int out[1];
        void main() {
            int hi = 0;
            for (int i = 0; i < 4; i++) {
                if (data[i] > hi) { hi = data[i]; }
            }
            out[0] = hi;
        }
        """
        module = codegen_no_promote(src)
        fn = module.function("main")
        promote_allocas(fn)
        verify_module(module)
        all_phis = [i for i in fn.instructions() if isinstance(i, Phi)]
        header_phis = list(fn.block("for.cond").phis())
        assert len(all_phis) > len(header_phis)  # merge phi(s) exist in body
        interp = Interpreter(module)
        interp.run(inputs={"data": [3, 9, 2, 7]})
        assert interp.read_global("out") == [9]
