"""Unit test for the recovery-analysis experiment driver (reduced scope)."""

import pytest

from repro.experiments import ExperimentCache, ExperimentSettings, recovery_analysis


@pytest.fixture(scope="module")
def cache():
    return ExperimentCache(ExperimentSettings(trials=10, workloads=("tiff2bw",)))


class TestRecoveryAnalysis:
    def test_rows_account_for_every_trial(self, cache):
        rows = recovery_analysis.compute(cache)
        assert len(rows) == 1
        r = rows[0]
        assert (
            r.corrected + r.clean + r.acceptable + r.escaped + r.trapped
            == r.trials
        )

    def test_correct_rate_bounds(self, cache):
        (r,) = recovery_analysis.compute(cache)
        assert 0.0 <= r.correct_output_rate <= 1.0
        assert r.mean_recovery_cost >= 0.0

    def test_report_renders(self, cache):
        text = recovery_analysis.report(cache)
        assert "checkpoint recovery" in text
        assert "tiff2bw" in text
        assert "fully-correct-output rate" in text
