"""End-to-end tests for the ``repro.serve`` campaign service.

The invariant under test is the house rule extended to the service layer:
a campaign routed through the durable queue — admitted, deduped, crashed,
restarted, drained — produces **byte-identical** results, obs logs, and
cache entries to a direct in-process run of the same spec.  The service may
only ever add bookkeeping, never change campaign bytes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.faultinjection.campaign import CampaignConfig, prepare, run_campaign
from repro.faultinjection.diskcache import campaign_key
from repro.faultinjection.resilience import default_policy
from repro.obs.heartbeat import effective_status, pid_alive
from repro.obs.top import render_service, watch
from repro.serve.client import (
    load_queue_state,
    result_for,
    service_status,
    submit_to_inbox,
)
from repro.serve.queue import JobState
from repro.serve.service import Service, ServiceConfig
from repro.serve.spec import CampaignSpec
from repro.serve.worker import EXIT_FAILED, EXIT_INTERRUPTED, job_paths
from repro.serve import service as service_mod
from repro.workloads.registry import get_workload


@pytest.fixture(autouse=True)
def _clean_serve_env(monkeypatch):
    """Service behaviour comes from explicit config here, not the caller's
    shell; the disk cache is off unless a test opts in."""
    for name in (
        "REPRO_OBS", "REPRO_OBS_TIMING", "REPRO_TRACE", "REPRO_HEARTBEAT",
        "REPRO_CHECKPOINT", "REPRO_CHECKPOINT_DIR", "REPRO_CHECKPOINT_EVERY",
        "REPRO_RESILIENCE", "REPRO_MAX_RETRIES", "REPRO_TRIAL_DEADLINE",
        "REPRO_FAULT_MODEL", "REPRO_TRIALS", "REPRO_JOBS", "REPRO_CACHE_DIR",
        "REPRO_SERVE_WORKERS", "REPRO_SERVE_DEPTH", "REPRO_SERVE_RETRIES",
    ):
        monkeypatch.delenv(name, raising=False)
    monkeypatch.setenv("REPRO_CACHE", "0")


def _config(root, **overrides) -> ServiceConfig:
    defaults = dict(
        root=str(root), workers=1, inline=True, until_idle=True,
        backoff_seconds=0.0, poll_interval=0.01, snapshot_every=5,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _spec(**overrides) -> CampaignSpec:
    defaults = dict(workload="g721dec", scheme="dup", trials=6, seed=11)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def _reference_result(spec: CampaignSpec) -> dict:
    config = CampaignConfig(
        trials=spec.trials, seed=spec.seed, jobs=spec.jobs,
        swap_train_test=spec.swap_train_test,
        fault_model=spec.fault_model or "single_bit",
        resilience=default_policy(),
    )
    prepared = prepare(get_workload(spec.workload), spec.scheme, config)
    return run_campaign(
        prepared.workload, spec.scheme, config, prepared=prepared
    ).to_dict()


# ---------------------------------------------------------------------------
# inline end-to-end: admission, dedup, results
# ---------------------------------------------------------------------------


def test_inline_service_runs_and_dedups(tmp_path):
    root = tmp_path / "svc"
    spec = _spec()
    a = submit_to_inbox(root, spec, tenant="alice")
    b = submit_to_inbox(root, spec, tenant="bob")       # same key → follower
    c = submit_to_inbox(root, _spec(seed=12), tenant="bob")
    assert Service(_config(root)).run() == 0

    state = load_queue_state(root)
    assert {state.jobs[j].state for j in (a, b, c)} == {JobState.DONE}
    assert state.counters["deduped"] == 1
    assert state.counters["done"] == 2  # one execution for a+b, one for c

    # one execution, N answers: the follower reads the primary's bytes
    result_a = result_for(root, a)
    assert result_a is not None and result_a["trials"] == spec.trials
    assert result_for(root, b) == result_a
    # and the service never changed campaign bytes
    assert result_a == _reference_result(spec)
    assert result_for(root, c) == _reference_result(_spec(seed=12))

    # the follower has no job directory of its own — no duplicate artifacts
    primary_id = state.jobs[b].primary
    assert primary_id == a
    assert not os.path.exists(job_paths(root, b).directory)

    # terminal heartbeat + service status round-trip
    status = service_status(root)
    assert status["kind"] == "service" and status["status"] == "stopped"
    assert "campaign service" in render_service(status)


def test_obs_log_byte_identical_to_direct_run(tmp_path):
    spec = _spec(trials=8, seed=3)
    root = tmp_path / "svc"
    job = submit_to_inbox(root, spec)
    assert Service(_config(root)).run() == 0

    ref_log = tmp_path / "ref.jsonl"
    config = CampaignConfig(
        trials=spec.trials, seed=spec.seed, obs_log=str(ref_log),
        resilience=default_policy(),
    )
    prepared = prepare(get_workload(spec.workload), spec.scheme, config)
    run_campaign(prepared.workload, spec.scheme, config, prepared=prepared)

    service_log = job_paths(root, job).obs_log
    assert open(service_log, "rb").read() == ref_log.read_bytes()


def test_admission_sheds_invalid_and_bounds_depth(tmp_path):
    service = Service(_config(tmp_path / "svc", max_depth=2))
    service.recover()
    try:
        bad = service.submit(_spec(workload="nope"), tenant="t")
        assert bad.state == JobState.SHED and "invalid spec" in bad.error

        jobs = [service.submit(_spec(seed=100 + i)) for i in range(3)]
        assert [j.state for j in jobs] == [
            JobState.QUEUED, JobState.QUEUED, JobState.SHED,
        ]
        assert "queue full" in jobs[2].error
        assert service.state.depth() == 2

        # same-key submissions dedup instead of consuming depth
        follower = service.submit(_spec(seed=100), tenant="other")
        assert follower.state == JobState.DEDUPED
        assert service.state.depth() == 2

        # inbox replay after a crash is idempotent: same id → same job,
        # no new journal record
        before = dict(service.state.counters)
        again = service.submit(_spec(seed=100), job_id=jobs[0].id)
        assert again is service.state.jobs[jobs[0].id]
        assert service.state.counters == before
        assert service.state.counters["admitted"] == 2
    finally:
        service.journal.close()


def test_malformed_inbox_drop_is_quarantined_not_fatal(tmp_path):
    """A hostile-shaped (but valid-JSON) submission must never crash the
    service loop — a poison file surviving in the inbox would wedge every
    restart."""
    root = tmp_path / "svc"
    good = submit_to_inbox(root, _spec())
    paths = service_mod.service_paths(root)
    with open(os.path.join(paths.inbox, "poison1.json"), "w",
              encoding="utf-8") as fh:
        json.dump({"id": "p1", "spec": [1, 2]}, fh)          # list spec
    with open(os.path.join(paths.inbox, "poison2.json"), "w",
              encoding="utf-8") as fh:
        json.dump({"id": "p2", "spec": {"workload": "g721dec",
                                        "scheme": "dup",
                                        "labels": 5}}, fh)   # scalar labels
    assert Service(_config(root)).run() == 0

    state = load_queue_state(root)
    assert state.jobs[good].state == JobState.DONE
    qdir = os.path.join(paths.inbox, "quarantine")
    assert sorted(os.listdir(qdir)) == ["poison1.json", "poison2.json"]
    # the inbox is clean: a restart admits nothing and exits idle
    assert Service(_config(root)).run() == 0


# ---------------------------------------------------------------------------
# retries, quarantine, interrupts (worker behaviour stubbed)
# ---------------------------------------------------------------------------


def test_poison_job_is_quarantined_with_evidence(tmp_path, monkeypatch):
    root = tmp_path / "svc"
    calls = []

    def _always_dies(svc_root, job_id, spec=None):
        calls.append(job_id)
        paths = job_paths(svc_root, job_id)
        os.makedirs(paths.directory, exist_ok=True)
        with open(paths.error, "w", encoding="utf-8") as fh:
            fh.write("Traceback: synthetic poison\n")
        return EXIT_FAILED

    monkeypatch.setattr(service_mod, "execute_job", _always_dies)
    poison = submit_to_inbox(root, _spec(), tenant="alice")
    follower = submit_to_inbox(root, _spec(), tenant="bob")
    assert Service(_config(root, max_job_retries=3)).run() == 0

    state = load_queue_state(root)
    job = state.jobs[poison]
    assert job.state == JobState.QUARANTINED
    assert len(calls) == 3 and job.attempts == 3  # retried, then parked
    assert "synthetic poison" in job.error
    assert state.counters["failed"] == 2
    assert state.counters["quarantined"] == 1
    # the follower is poisoned with it — nobody waits forever
    assert state.jobs[follower].state == JobState.QUARANTINED


def test_interrupt_requeues_without_charging_retries(tmp_path, monkeypatch):
    root = tmp_path / "svc"
    codes = [EXIT_INTERRUPTED, EXIT_INTERRUPTED, EXIT_FAILED]

    def _flaky(svc_root, job_id, spec=None):
        if codes:
            code = codes.pop(0)
            if code != EXIT_FAILED:
                return code
            paths = job_paths(svc_root, job_id)
            os.makedirs(paths.directory, exist_ok=True)
            with open(paths.error, "w", encoding="utf-8") as fh:
                fh.write("one real failure")
            return code
        from repro.serve.worker import execute_job
        return execute_job(svc_root, job_id, spec=spec)

    monkeypatch.setattr(service_mod, "execute_job", _flaky)
    job_id = submit_to_inbox(root, _spec())
    assert Service(_config(root, max_job_retries=3)).run() == 0

    state = load_queue_state(root)
    job = state.jobs[job_id]
    # 2 interrupts (uncharged) + 1 real failure (charged) + success
    assert job.state == JobState.DONE
    assert job.attempts == 1
    assert state.counters["interrupted"] == 2
    assert state.counters["failed"] == 1
    assert result_for(root, job_id) == _reference_result(_spec())


def test_retry_backoff_is_jittered_per_job_key(tmp_path, monkeypatch):
    root = tmp_path / "svc"
    delays = []
    monkeypatch.setattr(service_mod, "execute_job",
                        lambda *a, **k: EXIT_FAILED)
    real_jitter = service_mod.jittered_backoff

    def _spy(base, attempt, key=""):
        delay = real_jitter(base, attempt, key=key)
        delays.append((key, attempt, delay))
        return 0.0  # don't actually sleep in the test

    monkeypatch.setattr(service_mod, "jittered_backoff", _spy)
    submit_to_inbox(root, _spec(seed=1))
    submit_to_inbox(root, _spec(seed=2))
    assert Service(
        _config(root, max_job_retries=3, backoff_seconds=0.5)
    ).run() == 0

    # both jobs retried twice before quarantine, each with its own schedule
    by_key = {}
    for key, attempt, delay in delays:
        by_key.setdefault(key, []).append(delay)
    assert len(by_key) == 2
    first, second = by_key.values()
    assert first != second  # different content keys → desynchronized
    for schedule in (first, second):
        assert all(d > 0 for d in schedule)


# ---------------------------------------------------------------------------
# crash-kill-restart: the acceptance invariant
# ---------------------------------------------------------------------------


def _serve_cmd(root, workers):
    return [
        sys.executable, "-m", "repro.serve", "run", "--root", str(root),
        "--workers", str(workers), "--until-idle",
    ]


def _serve_env(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src")
    )
    env["REPRO_CACHE"] = "1"
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["REPRO_CHECKPOINT_EVERY"] = "5"
    return env


def _wait(predicate, timeout=120.0, poll=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return False


@pytest.mark.slow
@pytest.mark.parametrize("spec_jobs", [1, 2])
def test_sigkill_service_resume_is_byte_identical(tmp_path, spec_jobs):
    """SIGKILL the service with >=3 jobs in flight; the restarted service
    resumes every job from its checkpoint and finishes with results, obs
    logs, and cache entries byte-identical to direct runs."""
    root = tmp_path / "svc"
    cache_dir = tmp_path / "cache"
    specs = [
        _spec(scheme="dup_valchk", trials=40, seed=1, jobs=spec_jobs),
        _spec(scheme="dup", trials=40, seed=2, jobs=spec_jobs),
        _spec(scheme="original", trials=40, seed=3),
    ]
    ids = [submit_to_inbox(root, s, tenant=f"t{i}")
           for i, s in enumerate(specs)]
    env = _serve_env(cache_dir)

    proc = subprocess.Popen(_serve_cmd(root, 3), env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.STDOUT)
    try:
        assert _wait(lambda: sum(
            1 for j in load_queue_state(root).jobs.values()
            if j.state == JobState.RUNNING
        ) >= 3), "3 jobs never reached RUNNING"
        proc.kill()  # SIGKILL: no cleanup, no journal flush beyond the OS's
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()

    # restart: recovery requeues the casualties and runs them to completion
    rerun = subprocess.run(_serve_cmd(root, 3), env=env, timeout=600,
                           stdout=subprocess.DEVNULL,
                           stderr=subprocess.STDOUT)
    assert rerun.returncode == 0

    state = load_queue_state(root)
    assert all(state.jobs[i].state == JobState.DONE for i in ids)
    assert state.counters.get("interrupted", 0) >= 1

    for spec, job_id in zip(specs, ids):
        paths = job_paths(root, job_id)
        # 1. the result document is byte-identical to a direct run
        ref_log = tmp_path / f"ref-{job_id}.jsonl"
        config = CampaignConfig(
            trials=spec.trials, seed=spec.seed, jobs=spec.jobs,
            swap_train_test=spec.swap_train_test,
            fault_model=spec.fault_model or "single_bit",
            obs_log=str(ref_log), resilience=default_policy(),
        )
        prepared = prepare(get_workload(spec.workload), spec.scheme, config)
        reference = run_campaign(
            prepared.workload, spec.scheme, config, prepared=prepared
        )
        assert json.load(open(paths.result)) == reference.to_dict(), \
            f"{spec.describe()}: result diverged across kill-resume"
        # 2. the obs log is byte-identical, including the rewound tail
        assert open(paths.obs_log, "rb").read() == ref_log.read_bytes(), \
            f"{spec.describe()}: obs log diverged across kill-resume"
        # 3. the shared cache entry carries the same result payload
        key = campaign_key(prepared.module, spec.workload, spec.scheme,
                           config)
        entry = json.load(open(cache_dir / f"campaign-{key}.json"))
        assert entry["result"] == reference.to_dict(), \
            f"{spec.describe()}: cache entry diverged"


def test_recover_spares_unrelated_process_on_recycled_pid(tmp_path):
    """After downtime the recorded worker pid may belong to someone else;
    recovery must verify the cmdline before killing."""
    root = tmp_path / "svc"
    bystander = subprocess.Popen(
        [sys.executable, "-c", "import time; time.sleep(120)"])
    try:
        service = Service(_config(root))
        service.recover()
        job = service.submit(_spec())
        service._record({"type": "start", "job": job.id,
                         "pid": bystander.pid})
        service.journal.close()

        restarted = Service(_config(root))
        restarted.recover()
        restarted.journal.close()
        assert bystander.poll() is None  # innocent process untouched
        state = load_queue_state(root)
        assert state.jobs[job.id].state == JobState.QUEUED  # still requeued
    finally:
        bystander.kill()
        bystander.wait()


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="worker verification reads /proc cmdline")
def test_recover_kills_cmdline_verified_orphan_worker(tmp_path):
    root = tmp_path / "svc"
    service = Service(_config(root))
    service.recover()
    job = service.submit(_spec())
    orphan = subprocess.Popen(
        [sys.executable, "-c", "import time; time.sleep(120)",
         "exec-job", "--job", job.id])
    try:
        # wait for exec() to land so /proc/<pid>/cmdline shows the worker
        # argv (before that, verification conservatively skips the kill)
        assert _wait(
            lambda: service_mod._pid_is_job_worker(orphan.pid, job.id),
            timeout=10.0,
        ), "orphan cmdline never became visible"
        service._record({"type": "start", "job": job.id, "pid": orphan.pid})
        service.journal.close()

        restarted = Service(_config(root))
        restarted.recover()
        restarted.journal.close()
        assert orphan.wait(timeout=10) == -signal.SIGKILL
    finally:
        if orphan.poll() is None:
            orphan.kill()
            orphan.wait()


@pytest.mark.slow
def test_sigterm_drains_checkpoints_and_exits_zero(tmp_path):
    root = tmp_path / "svc"
    job_id = submit_to_inbox(root, _spec(trials=50_000, seed=9))
    env = _serve_env(tmp_path / "cache")
    proc = subprocess.Popen(_serve_cmd(root, 1), env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.STDOUT)
    try:
        assert _wait(lambda: any(
            j.state == JobState.RUNNING
            for j in load_queue_state(root).jobs.values()
        )), "job never started"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=120) == 0  # graceful drain exits 0
    finally:
        if proc.poll() is None:
            proc.kill()

    state = load_queue_state(root)
    job = state.jobs[job_id]
    # requeued with no retry charge: a drain is not the job's fault
    assert job.state == JobState.QUEUED
    assert job.attempts == 0
    assert state.draining is True
    status = service_status(root)
    assert status["status"] == "stopped"


# ---------------------------------------------------------------------------
# stale heartbeat handling (obs satellite)
# ---------------------------------------------------------------------------


def _dead_pid() -> int:
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_effective_status_demotes_dead_owner():
    doc = {"status": "running", "pid": os.getpid()}
    assert effective_status(doc) == "running"
    doc["pid"] = _dead_pid()
    assert effective_status(doc) == "stale"
    # terminal statuses are never demoted, whoever wrote them
    assert effective_status({"status": "done", "pid": -1}) == "done"
    assert effective_status({"status": "stopped", "pid": -1}) == "stopped"


def test_pid_alive_edge_cases():
    assert pid_alive(os.getpid()) is True
    assert pid_alive(_dead_pid()) is False
    assert pid_alive(None) is False
    assert pid_alive("not a pid") is False
    assert pid_alive(-5) is False


def test_top_until_done_exits_3_on_stale_heartbeat(tmp_path, capsys):
    from repro.obs.metrics import global_registry

    beat = tmp_path / "hb.json"
    beat.write_text(json.dumps({
        "status": "running", "pid": _dead_pid(),
        "workload": "g721dec", "scheme": "dup",
        "trials_done": 3, "trials_total": 10, "updated_unix": time.time(),
    }))
    registry = global_registry()
    prior = registry.enabled
    registry.enabled = True
    try:
        before = registry.counter("heartbeat.stale").value
        assert watch(str(beat), interval=0.0, until_done=True) == 3
        assert registry.counter("heartbeat.stale").value > before
    finally:
        registry.enabled = prior
    out = capsys.readouterr().out
    assert "stale" in out and "dead" in out


def test_stale_counter_counts_transitions_not_frames(tmp_path, capsys):
    from repro.obs.metrics import global_registry

    beat = tmp_path / "hb.json"
    beat.write_text(json.dumps({
        "status": "running", "pid": _dead_pid(),
        "workload": "g721dec", "scheme": "dup",
        "trials_done": 3, "trials_total": 10, "updated_unix": time.time(),
    }))
    registry = global_registry()
    prior = registry.enabled
    registry.enabled = True
    try:
        before = registry.counter("heartbeat.stale").value
        # three rendered frames of the same dead heartbeat = one detection
        assert watch(str(beat), interval=0.0, max_frames=3) == 0
        assert registry.counter("heartbeat.stale").value == before + 1
    finally:
        registry.enabled = prior
    capsys.readouterr()


def test_top_until_done_exits_0_on_terminal_status(tmp_path, capsys):
    beat = tmp_path / "hb.json"
    beat.write_text(json.dumps({
        "status": "done", "pid": _dead_pid(),
        "workload": "g721dec", "scheme": "dup",
        "trials_done": 10, "trials_total": 10, "updated_unix": time.time(),
    }))
    assert watch(str(beat), interval=0.0, until_done=True) == 0


def test_render_service_marks_dead_service_stale(tmp_path):
    frame = render_service({
        "kind": "service", "status": "running", "pid": _dead_pid(),
        "updated_unix": time.time(), "depth": 1, "max_depth": 8,
        "workers": 2, "workers_busy": 1,
        "counts": {"running": 1}, "counters": {"submitted": 1},
        "jobs": [{"id": "abc", "state": "running", "tenant": "t",
                  "spec": "g721dec/dup trials=6", "trials_done": 2,
                  "trials_total": 6, "attempts": 0}],
    })
    assert "stale" in frame and "dead" in frame
