"""Tests for the synthetic input generators."""

import numpy as np
import pytest

from repro.workloads.signals import (
    gaussian_clusters,
    synthetic_audio,
    synthetic_image,
    synthetic_rgb_image,
    synthetic_video,
    two_class_data,
)


class TestImages:
    def test_shape_and_range(self):
        img = synthetic_image(20, 12, seed=1)
        assert img.shape == (12, 20)
        assert img.min() >= 0 and img.max() <= 255

    def test_deterministic_per_seed(self):
        assert np.array_equal(synthetic_image(8, 8, 5), synthetic_image(8, 8, 5))
        assert not np.array_equal(synthetic_image(8, 8, 5), synthetic_image(8, 8, 6))

    def test_structured_not_noise(self):
        """Neighbouring pixels are correlated (it's an image, not static)."""
        img = synthetic_image(32, 32, seed=3).astype(float)
        horizontal = np.corrcoef(img[:, :-1].ravel(), img[:, 1:].ravel())[0, 1]
        assert horizontal > 0.5

    def test_rgb_shape(self):
        rgb = synthetic_rgb_image(10, 6, seed=2)
        assert rgb.shape == (6, 10, 3)
        assert rgb.min() >= 0 and rgb.max() <= 255


class TestAudio:
    def test_range_and_dynamics(self):
        audio = synthetic_audio(512, seed=7)
        assert audio.min() >= -32768 and audio.max() <= 32767
        assert audio.std() > 1000  # has real signal energy

    def test_band_limited(self):
        """Energy concentrates at low frequencies (tones, not white noise)."""
        audio = synthetic_audio(1024, seed=9).astype(float)
        spectrum = np.abs(np.fft.rfft(audio - audio.mean()))
        low = spectrum[: len(spectrum) // 4].sum()
        assert low / spectrum.sum() > 0.7


class TestVideo:
    def test_shape(self):
        video = synthetic_video(16, 16, 4, seed=11)
        assert video.shape == (4, 16, 16)

    def test_frames_move_but_cohere(self):
        video = synthetic_video(16, 16, 4, seed=13).astype(float)
        diffs = [np.abs(video[f + 1] - video[f]).mean() for f in range(3)]
        assert all(d > 0 for d in diffs)       # there is motion
        assert all(d < 60 for d in diffs)      # but frames are related


class TestMLData:
    def test_gaussian_clusters_separated(self):
        points, labels = gaussian_clusters(80, 4, 4, seed=17)
        assert points.shape == (80, 4) and labels.shape == (80,)
        centers = np.array([points[labels == k].mean(axis=0) for k in range(4)])
        # per-dimension scatter within a cluster (the generator's sigma*100)
        spread = np.array(
            [points[labels == k].std(axis=0).mean() for k in range(4)]
        ).mean()
        min_center_dist = min(
            np.linalg.norm(centers[i] - centers[j])
            for i in range(4) for j in range(i + 1, 4)
        )
        assert min_center_dist > 4 * spread  # well separated

    def test_two_class_data_separable(self):
        points, labels = two_class_data(60, 6, seed=19)
        assert set(labels) == {-1, 1}
        mean_pos = points[labels == 1].mean(axis=0)
        mean_neg = points[labels == -1].mean(axis=0)
        w = mean_pos - mean_neg
        scores = points @ w
        predicted = np.where(scores > scores.mean(), 1, -1)
        assert (predicted == labels).mean() > 0.9
