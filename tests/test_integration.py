"""End-to-end integration tests of the public `repro` API.

These exercise the full pipeline the README advertises: compile SCL source,
protect it, run it, inject faults, and confirm the protection actually
detects corruptions that matter.
"""

import numpy as np
import pytest

import repro
from repro import Interpreter, ProtectionConfig, compile_source, protect
from repro.faultinjection import CampaignConfig, Outcome, run_campaign
from repro.sim import GuardTrap, InjectionPlan, SimTrap
from repro.workloads import get_workload

KERNEL = """
input int samples[128];
input int params[1];
output int smoothed[128];

void main() {
    int n = params[0];
    int state = 0;
    for (int i = 0; i < n; i++) {
        state = (state * 3 + samples[i]) / 4;   // IIR low-pass: state variable
        smoothed[i] = state;
    }
}
"""


@pytest.fixture
def inputs():
    return {
        "samples": [((i * 37) % 200) - 100 for i in range(128)],
        "params": [128],
    }


class TestPublicAPI:
    def test_version_exposed(self):
        assert repro.__version__

    def test_compile_protect_run(self, inputs):
        module = compile_source(KERNEL)
        stats = protect(module, train_inputs=inputs)
        assert stats.num_state_variables >= 2
        assert stats.num_duplicated > 0
        interp = Interpreter(module, guard_mode="count")
        result = interp.run(inputs=inputs)
        assert result.guard_stats.evaluations > 0

    def test_protect_preserves_output(self, inputs):
        base = compile_source(KERNEL)
        base_interp = Interpreter(base)
        base_interp.run(inputs=inputs)
        expected = base_interp.read_global("smoothed")

        for scheme in ("dup", "dup_valchk", "full_dup"):
            module = compile_source(KERNEL)
            protect(module, scheme=scheme, train_inputs=inputs)
            interp = Interpreter(module, guard_mode="count")
            interp.run(inputs=inputs)
            assert interp.read_global("smoothed") == expected

    def test_protect_with_custom_config(self, inputs):
        module = compile_source(KERNEL)
        config = ProtectionConfig(optimization1=False, min_profile_samples=8)
        stats = protect(module, train_inputs=inputs, config=config)
        assert stats.num_value_checks >= 0

    def test_detection_efficacy(self, inputs):
        """Across a sweep of injections, the protected binary must convert a
        meaningful share of silent corruptions into detections."""
        def survey(module, trials=120):
            golden_interp = Interpreter(module, guard_mode="count")
            golden_interp.run(inputs=inputs)
            golden = golden_interp.read_global("smoothed")
            sdc = detected = 0
            for seed in range(trials):
                interp = Interpreter(module, guard_mode="detect")
                plan = InjectionPlan(cycle=200 + seed * 13, bit=seed % 31, seed=seed)
                try:
                    interp.run(inputs=inputs, injection=plan)
                except GuardTrap:
                    detected += 1
                    continue
                except SimTrap:
                    continue
                if interp.read_global("smoothed") != golden:
                    sdc += 1
            return sdc, detected

        unprotected = compile_source(KERNEL)
        sdc_before, _ = survey(unprotected)

        protected = compile_source(KERNEL)
        protect(protected, train_inputs=inputs)
        sdc_after, detected = survey(protected)

        assert detected > 0, "the protection never fired"
        assert sdc_after < sdc_before, (
            f"protection did not reduce SDCs ({sdc_before} -> {sdc_after})"
        )


class TestCrossValidationSmoke:
    def test_swapped_inputs_still_protect(self):
        config = CampaignConfig(trials=10, swap_train_test=True)
        result = run_campaign(get_workload("kmeans"), "dup_valchk", config)
        assert result.num_trials == 10
        # outputs classified into valid outcomes with swapped profile inputs
        assert all(isinstance(t.outcome, Outcome) for t in result.trials)
